#!/usr/bin/env python3
"""SDF front end: from rate-based dataflow to a mapped precedence graph.

The paper's conclusion announces support for further models of
computation, "including SDF".  This example models a multi-rate audio
effects chain as synchronous dataflow, checks consistency and liveness,
computes the repetition vector, unfolds one iteration into a precedence
graph, and maps it through the declarative public API — the unfolded
application rides inline in an
:class:`~repro.api.specs.ExplorationRequest` executed by
:func:`repro.api.explore`.

    mic --1:1--> agc --2:3--> eq --1:1--> reverb --3:2--> mix

Usage::

    python examples/sdf_unfolding.py
"""

from repro import (
    Architecture,
    Bus,
    Processor,
    ReconfigurableCircuit,
    SdfActor,
    SdfChannel,
    SdfGraph,
)
from repro.api import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    ExplorationRequest,
    explore,
)
from repro.io import application_to_dict, architecture_to_dict
from repro.model.functions import FunctionalitySpec, synthesize_implementations


def build_graph() -> SdfGraph:
    graph = SdfGraph("audio_effects")
    eq_spec = FunctionalitySpec("EQ", base_clbs=55, min_speedup=6.0,
                                max_speedup=24.0, variants=5)
    rev_spec = FunctionalitySpec("REVERB", base_clbs=80, min_speedup=5.0,
                                 max_speedup=18.0, variants=5)

    graph.add_actor(SdfActor("mic", "IO", 0.3))
    graph.add_actor(SdfActor("agc", "CTRL", 0.8))
    graph.add_actor(SdfActor("eq", "EQ", 2.4,
                             synthesize_implementations(eq_spec, 2.4)))
    graph.add_actor(SdfActor("reverb", "REVERB", 3.1,
                             synthesize_implementations(rev_spec, 3.1)))
    graph.add_actor(SdfActor("mix", "IO", 0.5))

    graph.add_channel(SdfChannel("mic", "agc", 1, 1, token_kbytes=2.0))
    graph.add_channel(SdfChannel("agc", "eq", 2, 3, token_kbytes=2.0))
    graph.add_channel(SdfChannel("eq", "reverb", 1, 1, token_kbytes=3.0))
    graph.add_channel(SdfChannel("reverb", "mix", 3, 2, token_kbytes=3.0))
    return graph


def main() -> None:
    graph = build_graph()
    repetitions = graph.repetition_vector()
    graph.check_live()
    print(f"SDF graph {graph.name!r}: consistent and live")
    print("repetition vector:",
          {name: repetitions[name] for name in sorted(repetitions)})

    app = graph.unfold(iterations=1)
    print(f"\nunfolded application: {len(app)} task instances, "
          f"{app.dag.num_edges()} precedence edges, "
          f"all-software {app.total_sw_time_ms():.1f} ms")

    arch = Architecture("audio_platform", bus=Bus(rate_kbytes_per_ms=30.0))
    arch.add_resource(Processor("dsp"))
    arch.add_resource(ReconfigurableCircuit("fabric", n_clbs=400,
                                            reconfig_ms_per_clb=0.02))
    request = ExplorationRequest(
        kind="single",
        application=ApplicationSpec(
            kind="inline", document=application_to_dict(app)
        ),
        architecture=ArchitectureSpec(
            kind="inline", document=architecture_to_dict(arch)
        ),
        budget=BudgetSpec(iterations=4000, warmup_iterations=600),
        seed=2,
    )
    response = explore(request)
    result = response.best_result
    ev = result.best_evaluation

    print(f"\nmapped iteration period: {ev.makespan_ms:.2f} ms "
          f"(speedup {app.total_sw_time_ms() / ev.makespan_ms:.1f}x)")
    print(f"  {ev.hw_tasks} firings in hardware across {ev.num_contexts} "
          f"context(s); reconfig {ev.reconfig_ms:.2f} ms; "
          f"bus {ev.comm_ms:.2f} ms")
    for actor in ("eq", "reverb"):
        placed = [
            t.name for t in app.tasks()
            if t.name.startswith(actor)
            and result.best_solution.context_of(t.index) is not None
        ]
        print(f"  {actor}: {len(placed)} of "
              f"{sum(1 for t in app.tasks() if t.name.startswith(actor))} "
              f"firings in hardware")


if __name__ == "__main__":
    main()
