#!/usr/bin/env python3
"""The paper's full experimental story on one page.

1. Fig. 2: one traced exploration run (warmup wandering, adaptive
   cooling, freeze below the 40 ms constraint).
2. Fig. 3 (abridged): a device-size sweep on a few FPGA capacities.
3. The section-5 comparison against the GA baseline of [6].

All three experiments are thin spec builders since the ``repro.api``
redesign: each assembles declarative
:class:`~repro.api.specs.ExplorationRequest` documents and runs them
through :func:`repro.api.explore`.

Usage::

    python examples/motion_detection.py [--fast]

``--fast`` shrinks budgets to finish in a few seconds.
"""

import sys

from repro.experiments.comparison import run_comparison
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import format_fig3_table, run_fig3
from repro.sa.trace import downsample


def main(fast: bool = False) -> None:
    # Even "fast" keeps enough budget to converge; below ~4000
    # iterations the annealer is still cooling and results mislead.
    iterations = 4000 if fast else 8000
    warmup = 800 if fast else 1200
    runs = 1 if fast else 3

    print("=" * 70)
    print("Fig. 2 — one traced exploration run (2000-CLB device)")
    print("=" * 70)
    fig2 = run_fig2(iterations=iterations, warmup_iterations=warmup, seed=7)
    print(fig2.format_summary())
    print(f"\n{'iteration':>10} {'exec (ms)':>10} {'contexts':>9}")
    for record in downsample(fig2.trace, every=max(len(fig2.trace) // 20, 1)):
        print(f"{record.iteration:>10} {record.current_cost:>10.2f} "
              f"{record.num_contexts:>9}")

    print()
    print("=" * 70)
    print("Fig. 3 (abridged) — device-size sweep")
    print("=" * 70)
    rows = run_fig3(
        sizes=(200, 800, 2000, 5000),
        runs=runs,
        iterations=iterations,
        warmup_iterations=warmup,
    )
    print(format_fig3_table(rows))

    print()
    print("=" * 70)
    print("Section 5 — adaptive SA vs the GA flow of [6]")
    print("=" * 70)
    comparison = run_comparison(
        sa_iterations=iterations,
        sa_warmup=warmup,
        ga_population=60 if fast else 300,
        ga_generations=10 if fast else 40,
        seed=11,
    )
    print(comparison.format_table())


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
