"""A3 — multi-implementation (area/time Pareto) exploration ablation.

Thin shim over the registered case ``ablation/impls``
(:mod:`repro.bench.suites`): what the 5-6 dominant implementations per
function buy against freezing every hardware task to its smallest or
fastest variant.
"""

from benchmarks.conftest import run_case_via


def test_implementation_choice_ablation(benchmark):
    rows = run_case_via(benchmark, "ablation/impls")["rows"]

    # Free choice must not lose to either frozen policy by a margin.
    frozen_best = min(rows["smallest"]["mean"], rows["fastest"]["mean"])
    assert rows["free"]["mean"] <= frozen_best + 2.0
    assert rows["free"]["mean"] < 40.0
