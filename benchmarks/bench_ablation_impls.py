"""A3 — multi-implementation (area/time Pareto) exploration ablation.

The paper stresses that each function has 5-6 synthesized dominant
implementations and the annealer picks among them.  This bench measures
what that degree of freedom buys against freezing every hardware task to
its smallest or fastest variant.
"""

from repro.experiments.ablations import run_impl_ablation

from benchmarks.conftest import bench_iters, bench_runs


def test_implementation_choice_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: run_impl_ablation(
            n_clbs=2000,
            iterations=bench_iters(),
            warmup=1200,
            runs=bench_runs(),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("Implementation-selection ablation (motion detection, 2000 CLBs)")
    print(f"{'mode':<10} {'mean(ms)':>9} {'std':>7} {'min':>8} {'max':>8}")
    for mode, summary in results.items():
        print(
            f"{mode:<10} {summary.mean:>9.2f} {summary.std:>7.2f} "
            f"{summary.minimum:>8.2f} {summary.maximum:>8.2f}"
        )

    # Free choice must not lose to either frozen policy by a margin.
    frozen_best = min(results["smallest"].mean, results["fastest"].mean)
    assert results["free"].mean <= frozen_best + 2.0
    assert results["free"].mean < 40.0
