"""The designer's quality/time knob (paper abstract, section 4.1).

Thin shim over the registered case ``experiment/quality_knob``
(:mod:`repro.bench.suites`): slower cooling runs longer and never ends
up worse on average.
"""

from benchmarks.conftest import run_case_via


def test_quality_knob(benchmark):
    rows = run_case_via(benchmark, "experiment/quality_knob")["rows"]

    # Slower cooling spends more iterations...
    assert rows["0.025"]["mean_iterations"] > rows["0.4"]["mean_iterations"]
    # ...and buys at least as good a solution (with slack for noise).
    assert (
        rows["0.025"]["makespan"]["mean"]
        <= rows["0.4"]["makespan"]["mean"] + 1.5
    )
    # Every setting still meets the paper's constraint on average.
    for row in rows.values():
        assert row["makespan"]["mean"] < 40.0
