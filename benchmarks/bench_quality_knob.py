"""The designer's quality/time knob (paper abstract, section 4.1).

Sweeping the adaptive schedule's single knob (``lambda_rate``) must
trade computing time against solution quality: slower cooling runs
longer and never ends up worse on average.
"""

from repro.experiments.quality import (
    QUALITY_HEADER,
    format_quality_table,
    run_quality_knob,
)

from benchmarks.conftest import bench_runs


def test_quality_knob(benchmark):
    rates = (0.4, 0.1, 0.025)
    rows = benchmark.pedantic(
        lambda: run_quality_knob(lambda_rates=rates, runs=bench_runs()),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_quality_table(rows))

    by_rate = {row.lambda_rate: row for row in rows}
    # Slower cooling spends more iterations...
    assert by_rate[0.025].mean_iterations > by_rate[0.4].mean_iterations
    # ...and buys at least as good a solution (with slack for noise).
    assert (
        by_rate[0.025].makespan.mean
        <= by_rate[0.4].makespan.mean + 1.5
    )
    # Every setting still meets the paper's constraint on average.
    for row in rows:
        assert row.makespan.mean < 40.0
