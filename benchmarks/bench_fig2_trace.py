"""E1 / Fig. 2 — evolution of execution time and number of contexts.

Regenerates the two curves of the paper's Fig. 2 (printed as a
downsampled table) and checks the narrative: infinite-temperature
wandering for the warmup phase, then a fast drop below the 40 ms
constraint, freezing well under it with a handful of contexts.
"""

from repro.analysis.plot import plot_trace
from repro.experiments.fig2 import run_fig2
from repro.model.motion import MOTION_DEADLINE_MS
from repro.sa.trace import downsample

from benchmarks.conftest import bench_iters


def test_fig2_trace(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2(
            n_clbs=2000,
            iterations=bench_iters(),
            warmup_iterations=1200,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format_summary())
    print()
    print(plot_trace(result.trace))
    print()
    print(f"{'iteration':>10} {'exec (ms)':>10} {'contexts':>9}")
    for record in downsample(result.trace, every=max(len(result.trace) // 40, 1)):
        print(
            f"{record.iteration:>10} {record.current_cost:>10.2f} "
            f"{record.num_contexts:>9}"
        )

    # Paper-shape assertions.
    ev = result.final_evaluation
    lo, hi = result.warmup_spread()
    assert hi - lo > 5.0, "warmup phase must explore broadly"
    assert ev.makespan_ms < MOTION_DEADLINE_MS, "frozen solution must meet 40 ms"
    assert ev.num_contexts >= 1
    assert result.iterations_to_deadline() is not None
    assert (
        result.exploration.initial_evaluation.makespan_ms > ev.makespan_ms
    ), "optimization must improve on the random initial solution"
