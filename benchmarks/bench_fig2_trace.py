"""E1 / Fig. 2 — evolution of execution time and number of contexts.

Thin shim over the registered case ``experiment/fig2_trace``
(:mod:`repro.bench.suites`): infinite-temperature wandering for the
warmup phase, then a fast drop below the 40 ms constraint, freezing
well under it with a handful of contexts.
"""

from benchmarks.conftest import run_case_via


def test_fig2_trace(benchmark):
    metrics = run_case_via(benchmark, "experiment/fig2_trace")

    # Paper-shape assertions.
    assert metrics["warmup_hi"] - metrics["warmup_lo"] > 5.0, (
        "warmup phase must explore broadly"
    )
    assert metrics["final_makespan_ms"] < metrics["deadline_ms"], (
        "frozen solution must meet 40 ms"
    )
    assert metrics["num_contexts"] >= 1
    assert metrics["iterations_to_deadline"] is not None
    assert metrics["initial_makespan_ms"] > metrics["final_makespan_ms"], (
        "optimization must improve on the random initial solution"
    )
