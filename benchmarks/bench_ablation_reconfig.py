"""Partial vs full reconfiguration ablation.

Thin shim over the registered case ``ablation/reconfig``
(:mod:`repro.bench.suites`): the paper's model is *partially*
reconfigurable (section 3.2), in contrast to full-device approaches in
its related work (Chatha & Vemuri [5]); this quantifies the gap.
"""

from benchmarks.conftest import run_case_via


def test_partial_vs_full_reconfiguration(benchmark):
    rows = run_case_via(benchmark, "ablation/reconfig")["rows"]

    # Whole-fabric reconfiguration (45 ms per context switch!) must hurt
    # badly: the optimizer either collapses to very few contexts or eats
    # the makespan penalty.  Partial reconfiguration must win clearly.
    assert rows["partial"]["exec_mean"] < rows["full"]["exec_mean"] - 3.0
    # Full-reconfig solutions avoid context switching.
    assert (
        rows["full"]["contexts_mean"]
        <= rows["partial"]["contexts_mean"] + 0.5
    )
