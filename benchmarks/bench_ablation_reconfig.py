"""Partial vs full reconfiguration ablation.

The paper's architecture model is explicitly *partially* reconfigurable
(section 3.2: "the FPGA reconfiguration time depends on the number of
CLBs needed"), in contrast to full-device approaches in its related
work (Chatha & Vemuri [5]).  This bench quantifies what partial
reconfiguration buys on the motion-detection benchmark: the same
optimizer on the same device with context-proportional vs whole-fabric
reconfiguration cost.
"""

from repro.analysis.stats import summarize
from repro.arch.architecture import Architecture
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.model.motion import motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer

from benchmarks.conftest import bench_iters, bench_runs


def make_arch(partial: bool) -> Architecture:
    arch = Architecture(
        "ablation_platform", bus=Bus(rate_kbytes_per_ms=50.0)
    )
    arch.add_resource(Processor("arm922"))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex",
            n_clbs=2000,
            reconfig_ms_per_clb=0.0225,
            partial_reconfiguration=partial,
        )
    )
    return arch


def run_mode(partial: bool, runs: int, iterations: int):
    application = motion_detection_application()
    costs, reconfigs, contexts = [], [], []
    for r in range(runs):
        explorer = DesignSpaceExplorer(
            application,
            make_arch(partial),
            iterations=iterations,
            warmup_iterations=1200,
            seed=31 + r,
            keep_trace=False,
        )
        ev = explorer.run().best_evaluation
        costs.append(ev.makespan_ms)
        reconfigs.append(ev.reconfig_ms)
        contexts.append(float(ev.num_contexts))
    return summarize(costs), summarize(reconfigs), summarize(contexts)


def test_partial_vs_full_reconfiguration(benchmark):
    runs, iterations = bench_runs(), bench_iters()
    results = benchmark.pedantic(
        lambda: {
            "partial": run_mode(True, runs, iterations),
            "full": run_mode(False, runs, iterations),
        },
        rounds=1,
        iterations=1,
    )

    print()
    print("Partial vs full reconfiguration (2000 CLBs, tR = 22.5 us/CLB)")
    print(f"{'mode':<9} {'exec(ms)':>9} {'reconfig(ms)':>13} {'contexts':>9}")
    for mode, (cost, reconfig, ctx) in results.items():
        print(f"{mode:<9} {cost.mean:>9.2f} {reconfig.mean:>13.2f} "
              f"{ctx.mean:>9.2f}")

    partial_cost = results["partial"][0].mean
    full_cost = results["full"][0].mean
    # Whole-fabric reconfiguration (45 ms per context switch!) must hurt
    # badly: the optimizer either collapses to very few contexts or eats
    # the makespan penalty.  Partial reconfiguration must win clearly.
    assert partial_cost < full_cost - 3.0
    # Full-reconfig solutions avoid context switching.
    assert results["full"][2].mean <= results["partial"][2].mean + 0.5
