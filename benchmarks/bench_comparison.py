"""E3 — adaptive SA vs the GA baseline of Ben Chehida & Auguin [6].

Paper numbers on the motion-detection benchmark (2000-CLB device):
GA 28 ms in ~4 minutes vs adaptive SA 18.1 ms in <10 s.  The shape to
reproduce: SA at least matches GA quality and is markedly faster.
"""

from repro.experiments.comparison import run_comparison

from benchmarks.conftest import bench_iters


def test_sa_vs_ga(benchmark):
    result = benchmark.pedantic(
        lambda: run_comparison(
            n_clbs=2000,
            sa_iterations=bench_iters(),
            sa_warmup=1200,
            ga_population=300,   # the population size of [6]
            ga_generations=60,   # enough for the GA to plateau
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(result.format_table())

    assert result.sa_makespan_ms <= result.ga_makespan_ms + 1e-9, (
        "SA must match or beat the GA flow"
    )
    # Paper: 4 min vs <10 s (~24x).  Our reimplemented GA memoizes
    # duplicate chromosomes and runs on 2026 hardware, so the ratio is
    # smaller, but SA must still be clearly faster at equal-or-better
    # quality (measured ratio recorded in EXPERIMENTS.md).
    assert result.speedup > 2.0, "SA must be markedly faster than the GA"
    assert result.sa_makespan_ms < result.deadline_ms
    assert result.sa_runtime_s < 10.0, "the paper's run takes < 10 s"
