"""E3 — adaptive SA vs the GA baseline of Ben Chehida & Auguin [6].

Thin shim over the registered case ``experiment/comparison``
(:mod:`repro.bench.suites`).  Paper numbers on the motion-detection
benchmark (2000-CLB device): GA 28 ms in ~4 minutes vs adaptive SA
18.1 ms in <10 s.  The shape to reproduce: SA at least matches GA
quality and is markedly faster.
"""

from benchmarks.conftest import run_case_via


def test_sa_vs_ga(benchmark):
    metrics = run_case_via(benchmark, "experiment/comparison")

    assert metrics["sa_makespan_ms"] <= metrics["ga_makespan_ms"] + 1e-9, (
        "SA must match or beat the GA flow"
    )
    # Paper: 4 min vs <10 s (~24x).  Our reimplemented GA memoizes
    # duplicate chromosomes and runs on 2026 hardware, so the ratio is
    # smaller, but SA must still be clearly faster at equal-or-better
    # quality (measured ratio recorded in EXPERIMENTS.md).
    assert metrics["speedup"] > 2.0, "SA must be markedly faster than the GA"
    assert metrics["sa_makespan_ms"] < metrics["deadline_ms"]
    assert metrics["sa_runtime_s"] < 10.0, "the paper's run takes < 10 s"
