"""Bus-policy ablation — serialized transactions vs plain edge delays.

Thin shim over the registered case ``ablation/bus``
(:mod:`repro.bench.suites`); section 3.3 requires a total order on
shared-medium transactions, and this asserts that ignoring contention
can only look faster.
"""

from benchmarks.conftest import run_case_via


def test_bus_policy_ablation(benchmark):
    rows = run_case_via(benchmark, "ablation/bus")["rows"]

    # Both policies solve the problem; the contention-free relaxation
    # may be at most marginally "faster" (it under-models the bus).
    assert rows["ordered"]["mean"] < 40.0
    assert rows["edge"]["mean"] < 40.0
    assert rows["edge"]["mean"] <= rows["ordered"]["mean"] + 3.0
