"""Bus-policy ablation — serialized transactions vs plain edge delays.

Section 3.3 requires a total order on shared-medium transactions; this
bench quantifies how much bus exclusiveness costs on the benchmark (and
sanity-checks that ignoring contention can only look faster).
"""

from repro.experiments.ablations import run_bus_ablation

from benchmarks.conftest import bench_iters, bench_runs


def test_bus_policy_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: run_bus_ablation(
            n_clbs=2000,
            iterations=bench_iters(),
            warmup=1200,
            runs=bench_runs(),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("Bus-policy ablation (motion detection, 2000 CLBs)")
    for policy, summary in results.items():
        print(f"  {policy:<8} {summary.format('ms')}")

    # Both policies solve the problem; the contention-free relaxation
    # may be at most marginally "faster" (it under-models the bus).
    assert results["ordered"].mean < 40.0
    assert results["edge"].mean < 40.0
    assert results["edge"].mean <= results["ordered"].mean + 3.0
