"""Cost-performance Pareto front (the introduction's framing of the tool).

For a sweep of deadlines, run architecture exploration and report the
cheapest platform found for each — tighter budgets must buy more
hardware (monotone non-increasing cost as deadlines loosen).
"""

from repro.experiments.pareto import format_pareto_table, run_pareto_front

from benchmarks.conftest import bench_iters


def test_pareto_front(benchmark):
    deadlines = (80.0, 60.0, 40.0, 30.0)
    points = benchmark.pedantic(
        lambda: run_pareto_front(
            deadlines_ms=deadlines, iterations=bench_iters(),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_pareto_table(points))

    by_deadline = {p.deadline_ms: p for p in points}
    # Loose deadlines are satisfiable.
    assert by_deadline[80.0].meets_deadline
    assert by_deadline[60.0].meets_deadline
    assert by_deadline[40.0].meets_deadline
    # Cost is monotone: loosening the deadline never costs more.
    ordered = sorted(points, key=lambda p: p.deadline_ms)
    for tight, loose in zip(ordered, ordered[1:]):
        assert loose.monetary_cost <= tight.monetary_cost + 1e-9
