"""Cost-performance Pareto front (the introduction's framing of the tool).

Thin shim over the registered case ``experiment/pareto_front``
(:mod:`repro.bench.suites`): tighter budgets must buy more hardware
(monotone non-increasing cost as deadlines loosen).
"""

from benchmarks.conftest import run_case_via


def test_pareto_front(benchmark):
    rows = run_case_via(benchmark, "experiment/pareto_front")["rows"]

    # Loose deadlines are satisfiable.
    assert rows["80.0"]["meets_deadline"]
    assert rows["60.0"]["meets_deadline"]
    assert rows["40.0"]["meets_deadline"]
    # Cost is monotone: loosening the deadline never costs more.
    ordered = sorted(rows.items(), key=lambda item: float(item[0]))
    for (_, tight), (_, loose) in zip(ordered, ordered[1:]):
        assert loose["monetary_cost"] <= tight["monetary_cost"] + 1e-9
