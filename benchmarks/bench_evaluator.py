"""A2 — incremental max-plus closure vs full longest-path recompute.

The paper's section 4.4 motivates a Woodbury-type incremental update for
the longest path.  This bench quantifies the trade-off on this
implementation: per-edge-insertion cost of the O(n²) incremental closure
against a full O(V+E) topological recompute, plus the throughput of the
full solution evaluation pipeline on the motion benchmark.
"""

import random

from repro.arch.architecture import epicure_architecture
from repro.graph.generators import layered
from repro.graph.longest_path import longest_path_length
from repro.graph.maxplus import MaxPlusClosure
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.motion import motion_detection_application


def _edge_stream(num_layers=8, width=5, seed=3):
    dag = layered(num_layers, width, edge_probability=0.4, seed=seed)
    rng = random.Random(seed)
    edges = [(a, b, rng.uniform(0.5, 3.0)) for a, b, _ in dag.edges()]
    nodes = list(dag.nodes())
    return nodes, edges


def test_incremental_closure_insertions(benchmark):
    nodes, edges = _edge_stream()

    def build_incrementally():
        closure = MaxPlusClosure(nodes)
        for a, b, w in edges:
            closure.add_edge(a, b, w)
        return closure.longest_path_length()

    length = benchmark(build_incrementally)
    assert length > 0


def test_full_recompute_per_insertion(benchmark):
    nodes, edges = _edge_stream()
    from repro.graph.dag import Dag

    def rebuild_every_time():
        dag = Dag()
        for n in nodes:
            dag.add_node(n)
        last = 0.0
        for a, b, w in edges:
            dag.add_edge(a, b, w)
            last = longest_path_length(dag)  # full DP after each insert
        return last

    length = benchmark(rebuild_every_time)
    assert length > 0


def test_equivalence_of_both_paths():
    """Not a timing: the two evaluation strategies agree exactly."""
    nodes, edges = _edge_stream(seed=11)
    from repro.graph.dag import Dag

    closure = MaxPlusClosure(nodes)
    dag = Dag()
    for n in nodes:
        dag.add_node(n)
    for a, b, w in edges:
        closure.add_edge(a, b, w)
        dag.add_edge(a, b, w)
        assert abs(closure.longest_path_length() - longest_path_length(dag)) < 1e-9


def test_solution_evaluation_throughput(benchmark):
    """Full pipeline cost per candidate (the annealer's hot path)."""
    application = motion_detection_application()
    architecture = epicure_architecture(2000)
    evaluator = Evaluator(application, architecture)
    solution = random_initial_solution(
        application, architecture, random.Random(5), hw_fraction=0.5
    )
    makespan = benchmark(evaluator.makespan_ms, solution)
    assert makespan > 0
