"""A2 — incremental max-plus closure vs full longest-path recompute.

Thin shim over the ``kernel/*`` cases (:mod:`repro.bench.suites`): the
paper's section 4.4 motivates a Woodbury-type incremental update for
the longest path; this quantifies per-edge-insertion cost of the O(n²)
incremental closure against a full O(V+E) topological recompute, plus
the throughput of the full solution-evaluation pipeline on the motion
benchmark.
"""

from benchmarks.conftest import run_case_via


def test_incremental_closure_insertions(benchmark):
    metrics = run_case_via(benchmark, "kernel/closure_incremental")
    assert metrics["longest_path"] > 0


def test_full_recompute_per_insertion(benchmark):
    metrics = run_case_via(benchmark, "kernel/closure_full_recompute")
    assert metrics["longest_path"] > 0


def test_equivalence_of_both_paths():
    """Both kernels agree on the final longest path (exactly)."""
    from benchmarks.conftest import bench_context
    from repro.bench import get_case

    context = bench_context()
    incremental = get_case("kernel/closure_incremental")
    full = get_case("kernel/closure_full_recompute")
    a = incremental.run(context, incremental.prepare(context))
    b = full.run(context, full.prepare(context))
    assert a["longest_path"] == b["longest_path"]
    assert a["edges"] == b["edges"]


def test_solution_evaluation_throughput(benchmark):
    metrics = run_case_via(benchmark, "kernel/solution_evaluation")
    assert metrics["makespan_ms"] > 0
