"""A4 — architecture exploration with moves m3/m4 (the paper's general mode).

Thin shim over the registered case ``experiment/arch_exploration``
(:mod:`repro.bench.suites`): starting from a minimal platform, the
annealer may instantiate catalog resources and must end with a
deadline-meeting design of reasonable cost.
"""

from repro.model.motion import MOTION_DEADLINE_MS

from benchmarks.conftest import run_case_via


def test_architecture_exploration(benchmark):
    metrics = run_case_via(benchmark, "experiment/arch_exploration")

    assert metrics["feasible"]
    assert metrics["makespan_ms"] <= MOTION_DEADLINE_MS + 1e-9
    assert metrics["num_processors"] >= 1, "a processor must survive"
    # The design must not hoard resources (m3 prunes drained ones).
    assert metrics["monetary_cost"] <= 10.0
    assert metrics["num_resources"] <= 5
