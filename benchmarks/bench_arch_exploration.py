"""A4 — architecture exploration with moves m3/m4 (the paper's general mode).

The DATE'05 experiments pin the architecture (probability of drawing the
special index 0 is set to 0); the underlying method, however, explores
the resource set to minimize system cost under a deadline.  This bench
exercises that mode: starting from a minimal platform, the annealer may
instantiate catalog resources (extra processor / bigger DRLC / ASIC) and
must end with a deadline-meeting design of reasonable cost.
"""

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.mapping.cost import SystemCost
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer

from benchmarks.conftest import bench_iters

CATALOG = [
    lambda name: Processor(name, speed_factor=1.0, monetary_cost=1.0),
    lambda name: ReconfigurableCircuit(
        name, n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
    ),
    lambda name: Asic(name, monetary_cost=4.0),
]


def minimal_platform() -> Architecture:
    arch = Architecture("minimal", bus=Bus(rate_kbytes_per_ms=50.0))
    arch.add_resource(Processor("arm922", monetary_cost=1.0))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex", n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
        )
    )
    return arch


def test_architecture_exploration(benchmark):
    application = motion_detection_application()

    def explore():
        explorer = DesignSpaceExplorer(
            application,
            minimal_platform(),
            iterations=bench_iters(),
            warmup_iterations=1200,
            seed=19,
            p_zero=0.05,
            catalog=CATALOG,
            cost_function=SystemCost(
                deadline_ms=MOTION_DEADLINE_MS, penalty_per_ms=50.0
            ),
            keep_trace=False,
        )
        return explorer.run()

    result = benchmark.pedantic(explore, rounds=1, iterations=1)

    arch = result.best_solution.architecture
    ev = result.best_evaluation
    print()
    print("Architecture exploration (SystemCost, 40 ms deadline)")
    print(f"  final makespan:   {ev.makespan_ms:.2f} ms")
    print(f"  final resources:  {[r.name for r in arch.resources()]}")
    print(f"  monetary cost:    {arch.total_monetary_cost():.1f}")

    assert ev.feasible
    assert ev.makespan_ms <= MOTION_DEADLINE_MS + 1e-9
    assert arch.processors(), "at least one processor must survive"
    # The design must not hoard resources (m3 prunes drained ones).
    assert arch.total_monetary_cost() <= 10.0
    assert len(list(arch.resources())) <= 5
