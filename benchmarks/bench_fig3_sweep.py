"""E2 / Fig. 3 — execution/reconfiguration time and contexts vs FPGA size.

Regenerates the paper's device sweep.  The paper averages 100 runs per
size; set ``REPRO_BENCH_RUNS=100`` for the faithful (slow) version.

Shape assertions (paper narrative):
* small devices are much slower than the best mid-size device;
* the execution-time curve has an interior minimum then a plateau;
* small devices use the most contexts, large devices a single one.
"""

from repro.analysis.plot import plot_sweep
from repro.experiments.fig3 import FIG3_SIZES, format_fig3_table, run_fig3

from benchmarks.conftest import bench_iters, bench_runs


def test_fig3_sweep(benchmark):
    sizes = FIG3_SIZES
    rows = benchmark.pedantic(
        lambda: run_fig3(
            sizes=sizes,
            runs=bench_runs(),
            iterations=bench_iters(),
            warmup_iterations=1200,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(format_fig3_table(rows))
    print()
    print(plot_sweep(rows))

    by_size = {row.n_clbs: row for row in rows}
    best = min(rows, key=lambda r: r.execution_ms)

    # Tiny devices cannot hold useful contexts: far slower than the best.
    assert by_size[100].execution_ms > best.execution_ms + 8.0
    # The minimum is interior (neither the smallest nor the largest size).
    assert best.n_clbs not in (sizes[0], sizes[-1])
    # Context counts fall steeply as devices grow.  (Deviation from the
    # paper, recorded in EXPERIMENTS.md: our model rewards pipelining
    # reconfiguration under processor work, so large devices keep a few
    # contexts instead of exactly one.)
    assert by_size[100].num_contexts > 2 * by_size[10000].num_contexts
    small_ctx = max(by_size[s].num_contexts for s in (400, 600, 800, 1000))
    assert small_ctx > by_size[10000].num_contexts
    # Total reconfiguration time stays roughly constant (within ~2x)
    # across the multi-context regime, as the paper observes.
    reconfigs = [by_size[s].reconfig_ms for s in (200, 400, 600, 800, 1000, 1500)]
    assert max(reconfigs) < 2.5 * min(reconfigs)
    # The 2000-CLB platform of Fig. 2 meets the constraint on average.
    assert by_size[2000].execution_ms < 40.0
