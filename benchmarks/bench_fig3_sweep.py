"""E2 / Fig. 3 — execution/reconfiguration time and contexts vs FPGA size.

Thin shim over the registered case ``experiment/fig3_sweep``
(:mod:`repro.bench.suites`).  The paper averages 100 runs per size; set
``REPRO_BENCH_RUNS=100`` for the faithful (slow) version.

Shape assertions (paper narrative):
* small devices are much slower than the best mid-size device;
* the execution-time curve has an interior minimum then a plateau;
* small devices use the most contexts, large devices a single one.
"""

from benchmarks.conftest import run_case_via


def test_fig3_sweep(benchmark):
    metrics = run_case_via(benchmark, "experiment/fig3_sweep")
    rows = metrics["rows"]
    sizes = metrics["sizes"]
    best = min(rows.values(), key=lambda row: row["execution_ms"])

    # Tiny devices cannot hold useful contexts: far slower than the best.
    assert rows["100"]["execution_ms"] > best["execution_ms"] + 8.0
    # The minimum is interior (neither the smallest nor the largest size).
    assert metrics["best_n_clbs"] not in (sizes[0], sizes[-1])
    # Context counts fall steeply as devices grow.  (Deviation from the
    # paper, recorded in EXPERIMENTS.md: our model rewards pipelining
    # reconfiguration under processor work, so large devices keep a few
    # contexts instead of exactly one.)
    assert rows["100"]["num_contexts"] > 2 * rows["10000"]["num_contexts"]
    small_ctx = max(
        rows[str(s)]["num_contexts"] for s in (400, 600, 800, 1000)
    )
    assert small_ctx > rows["10000"]["num_contexts"]
    # Total reconfiguration time stays roughly constant (within ~2x)
    # across the multi-context regime, as the paper observes.
    reconfigs = [
        rows[str(s)]["reconfig_ms"] for s in (200, 400, 600, 800, 1000, 1500)
    ]
    assert max(reconfigs) < 2.5 * min(reconfigs)
    # The 2000-CLB platform of Fig. 2 meets the constraint on average.
    assert rows["2000"]["execution_ms"] < 40.0
