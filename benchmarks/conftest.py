"""Benchmark-suite configuration.

Environment knobs (all optional):

* ``REPRO_BENCH_RUNS``   — repetitions per configuration (default 3;
  the paper's Fig. 3 uses 100 — set it that high for a faithful rerun).
* ``REPRO_BENCH_ITERS``  — annealing iterations per run (default 8000).

Every bench prints the paper-style table it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
report generator (EXPERIMENTS.md records one such run).
"""

import os

import pytest


def bench_runs(default: int = 3) -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def bench_iters(default: int = 8000) -> int:
    return int(os.environ.get("REPRO_BENCH_ITERS", default))


@pytest.fixture(scope="session")
def runs() -> int:
    return bench_runs()


@pytest.fixture(scope="session")
def iters() -> int:
    return bench_iters()
