"""Benchmark-suite configuration.

The measurement bodies live in :mod:`repro.bench.suites`; these scripts
are thin shims that execute the registered cases and assert the paper's
narrative on the returned metrics.  ``bench_context`` translates the
historical environment knobs into a :class:`repro.bench.BenchContext`:

* ``REPRO_BENCH_RUNS``   — repetitions per configuration (default 3;
  the paper's Fig. 3 uses 100 — set it that high for a faithful rerun).
* ``REPRO_BENCH_ITERS``  — annealing iterations per run (default 8000).
* ``REPRO_BENCH_JOBS``   — worker processes for multi-seed cases
  (default 1).

Every bench prints the paper-style table it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment
report generator (EXPERIMENTS.md records one such run).
"""

import os

import pytest

from repro.bench import BenchContext, get_case


def bench_runs(default: int = 3) -> int:
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def bench_iters(default: int = 8000) -> int:
    return int(os.environ.get("REPRO_BENCH_ITERS", default))


def bench_jobs(default: int = 1) -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


def bench_context(**overrides) -> BenchContext:
    """The full-scale context the shims hand to their registered case."""
    knobs = dict(
        suite="full",
        iterations=bench_iters(),
        runs=bench_runs(),
        jobs=bench_jobs(),
    )
    knobs.update(overrides)
    return BenchContext(**knobs)


def run_case_via(benchmark, case_name: str, **overrides) -> dict:
    """Execute one registered case once under pytest-benchmark's timer,
    print its report, and return its metrics."""
    context = bench_context(**overrides)
    case = get_case(case_name)
    state = case.prepare(context)
    metrics = dict(
        benchmark.pedantic(
            lambda: case.run(context, state), rounds=1, iterations=1
        )
    )
    report = metrics.pop("report", None)
    if report:
        print()
        print(report)
    return metrics


@pytest.fixture(scope="session")
def runs() -> int:
    return bench_runs()


@pytest.fixture(scope="session")
def iters() -> int:
    return bench_iters()
