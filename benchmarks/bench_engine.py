"""Engine benchmark — evaluations/sec, full rebuild vs incremental.

Thin shim over the bench subsystem: instances come from the scenario
corpus (:mod:`repro.bench.corpus`) and the annealer-shaped
move/evaluate/undo loop is :func:`repro.bench.move_eval_loop` — the
same loop the ``throughput/*`` suite cases record to
``BENCH_<suite>.json``.  Parity is asserted on every single evaluation:
the incremental engine must produce bit-identical makespans while being
several times faster.

Run with ``pytest benchmarks/bench_engine.py -s`` to see the table.

Environment knobs: ``REPRO_BENCH_ENGINE_EVALS`` (evaluations per
measurement, default 3000), ``REPRO_BENCH_ENGINE_REPS`` (repetitions,
median reported, default 3), ``REPRO_BENCH_ENGINE_ASSERT=0`` (report
the table without asserting wall-clock speedup factors — for CI
runners, where scheduler noise makes timing assertions flaky; the
bitwise-parity test is never relaxed).
"""

import os
import random
import statistics

from repro.bench import get_scenario, move_eval_loop
from repro.errors import InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import MoveGenerator

N_EVALS = int(os.environ.get("REPRO_BENCH_ENGINE_EVALS", 3000))
REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", 3))
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ENGINE_ASSERT", "1") != "0"

#: Corpus scenarios spanning the size axis of the original table.
SCENARIOS = ("tgff/12", "tgff/36", "tgff/120", "motion/2000")


def _evals_per_sec(instance, engine, n_evals, seed=7):
    out = move_eval_loop(
        instance, engine, n_evals, seed=seed, time_evals_only=True
    )
    return out["evaluations"] / out["eval_elapsed_s"]


def _parity_makespans(instance, steps, seed=7):
    """Replay one move stream through all three engines; returns the
    number of bit-identical makespan comparisons performed."""
    app, arch = instance.application, instance.architecture
    full = Evaluator(app, arch, engine="full")
    inc = Evaluator(app, arch, engine="incremental")
    arr = Evaluator(app, arch, engine="array")
    rng = random.Random(seed)
    solution = random_initial_solution(app, arch, rng, hw_fraction=0.5)
    generator = MoveGenerator(app)
    n = 0
    while n < steps:
        try:
            move = generator.propose(solution, rng)
            move.apply(solution)
        except InfeasibleMoveError:
            continue
        reference = full.evaluate(solution)
        assert reference == inc.evaluate(solution)
        assert reference == arr.evaluate(solution)
        n += 1
        if rng.random() < 0.5:
            move.undo(solution)
    return n


def test_engine_throughput():
    """The headline table: evaluations/sec per engine and instance."""
    print()
    print("engine throughput (evaluations/sec, move-evaluate-undo loop, "
          f"median of {REPS})")
    header = (f"{'instance':<20} {'full':>9} {'incremental':>12} "
              f"{'array':>9} {'inc/full':>9} {'arr/inc':>8}")
    print(header)
    print("-" * len(header))
    inc_speedups = {}
    arr_speedups = {}
    for name in SCENARIOS:
        instance = get_scenario(name).build()
        full = statistics.median(
            _evals_per_sec(instance, "full", N_EVALS) for _ in range(REPS)
        )
        inc = statistics.median(
            _evals_per_sec(instance, "incremental", N_EVALS)
            for _ in range(REPS)
        )
        arr = statistics.median(
            _evals_per_sec(instance, "array", N_EVALS) for _ in range(REPS)
        )
        inc_speedups[name] = inc / full
        arr_speedups[name] = arr / full
        print(f"{name:<20} {full:>9.0f} {inc:>12.0f} {arr:>9.0f} "
              f"{inc / full:>8.2f}x {arr / inc:>7.2f}x")
    # Both delta engines must win decisively over the rebuild reference
    # everywhere.  The array engine's persistent order/DP pays off most
    # on the larger instances (it leads the incremental engine from
    # ~120 tasks up and ties below); the array-vs-incremental column is
    # reported but only gated against the full reference, because the
    # small-instance ordering of the two fast engines is within noise.
    # Timing assertions are skipped on noisy runners via
    # REPRO_BENCH_ENGINE_ASSERT=0.
    if ASSERT_SPEEDUP:
        for name, factor in inc_speedups.items():
            assert factor > 1.5, f"{name}: only {factor:.2f}x over full"
        for name, factor in arr_speedups.items():
            assert factor > 1.5, (
                f"{name}: array only {factor:.2f}x over full"
            )


def test_engine_parity_is_bit_identical():
    """Every benchmarked instance: makespans agree bitwise throughout."""
    for name in SCENARIOS:
        instance = get_scenario(name).build()
        compared = _parity_makespans(instance, steps=300)
        assert compared == 300, name
