"""Engine benchmark — evaluations/sec, full rebuild vs incremental.

Measures the annealer's hot operation (``Evaluator.evaluate`` after each
move, with Metropolis-style rejected-move undos) for both evaluation
engines across the motion-detection benchmark and small/medium/large
random applications.  Parity is asserted on every single evaluation —
the incremental engine must produce bit-identical makespans while being
several times faster.

Run with ``pytest benchmarks/bench_engine.py -s`` to see the table.

Environment knobs: ``REPRO_BENCH_ENGINE_EVALS`` (evaluations per
measurement, default 3000), ``REPRO_BENCH_ENGINE_REPS`` (repetitions,
median reported, default 3), ``REPRO_BENCH_ENGINE_ASSERT=0`` (report
the table without asserting wall-clock speedup factors — for CI
runners, where scheduler noise makes timing assertions flaky; the
bitwise-parity test is never relaxed).
"""

import os
import random
import statistics
import time

from repro.arch.architecture import epicure_architecture
from repro.errors import InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.generator import GeneratorConfig, random_application
from repro.model.motion import motion_detection_application
from repro.sa.moves import MoveGenerator

N_EVALS = int(os.environ.get("REPRO_BENCH_ENGINE_EVALS", 3000))
REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", 3))
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ENGINE_ASSERT", "1") != "0"


def _cases():
    return [
        ("small (12 tasks)",
         random_application(GeneratorConfig(num_tasks=12), seed=1),
         epicure_architecture(800)),
        ("medium (40 tasks)",
         random_application(GeneratorConfig(num_tasks=40), seed=2),
         epicure_architecture(2000)),
        ("large (120 tasks)",
         random_application(GeneratorConfig(num_tasks=120), seed=3),
         epicure_architecture(4000)),
        ("motion detection",
         motion_detection_application(),
         epicure_architecture(2000)),
    ]


def _evals_per_sec(app, arch, engine, n_evals, seed=7):
    """Annealer-shaped loop: propose, apply, evaluate, 50% undo.  Only
    the evaluate calls are timed."""
    evaluator = Evaluator(app, arch, engine=engine)
    rng = random.Random(seed)
    solution = random_initial_solution(app, arch, rng, hw_fraction=0.5)
    generator = MoveGenerator(app)
    elapsed = 0.0
    n = 0
    while n < n_evals:
        try:
            move = generator.propose(solution, rng)
            move.apply(solution)
        except InfeasibleMoveError:
            continue
        t0 = time.perf_counter()
        evaluator.evaluate(solution)
        elapsed += time.perf_counter() - t0
        n += 1
        if rng.random() < 0.5:
            move.undo(solution)
    return n / elapsed


def _parity_makespans(app, arch, steps, seed=7):
    """Replay one move stream through both engines; returns the number
    of bit-identical makespan comparisons performed."""
    full = Evaluator(app, arch, engine="full")
    inc = Evaluator(app, arch, engine="incremental")
    rng = random.Random(seed)
    solution = random_initial_solution(app, arch, rng, hw_fraction=0.5)
    generator = MoveGenerator(app)
    n = 0
    while n < steps:
        try:
            move = generator.propose(solution, rng)
            move.apply(solution)
        except InfeasibleMoveError:
            continue
        assert full.evaluate(solution) == inc.evaluate(solution)
        n += 1
        if rng.random() < 0.5:
            move.undo(solution)
    return n


def test_engine_throughput():
    """The headline table: evaluations/sec per engine and instance."""
    print()
    print("engine throughput (evaluations/sec, move-evaluate-undo loop, "
          f"median of {REPS})")
    header = f"{'instance':<20} {'full':>9} {'incremental':>12} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    speedups = {}
    for name, app, arch in _cases():
        full = statistics.median(
            _evals_per_sec(app, arch, "full", N_EVALS) for _ in range(REPS)
        )
        inc = statistics.median(
            _evals_per_sec(app, arch, "incremental", N_EVALS)
            for _ in range(REPS)
        )
        speedups[name] = inc / full
        print(f"{name:<20} {full:>9.0f} {inc:>12.0f} {inc / full:>7.2f}x")
    # The incremental engine must win decisively everywhere; the gap
    # widens with instance size (dict/tuple overhead scales with V+E,
    # the delta-patched arrays do not).  Timing assertions are skipped
    # on noisy runners via REPRO_BENCH_ENGINE_ASSERT=0.
    if ASSERT_SPEEDUP:
        for name, factor in speedups.items():
            assert factor > 1.5, f"{name}: only {factor:.2f}x"


def test_engine_parity_is_bit_identical():
    """Every benchmarked instance: makespans agree bitwise throughout."""
    for name, app, arch in _cases():
        compared = _parity_makespans(app, arch, steps=300)
        assert compared == 300, name