"""A1 — cooling-schedule ablation at an equal move budget.

The paper's pitch: the adaptive (Lam) schedule needs no per-problem
tuning yet is competitive.  We compare Lam adaptive, modified-Lam,
untuned geometric, zero-temperature hill climbing and random restart.
"""

from repro.experiments.ablations import (
    SCHEDULE_ABLATION_HEADER,
    run_schedule_ablation,
)

from benchmarks.conftest import bench_iters, bench_runs


def test_schedule_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_schedule_ablation(
            n_clbs=2000,
            iterations=bench_iters(),
            warmup=1200,
            runs=bench_runs(),
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("Schedule ablation (motion detection, 2000 CLBs)")
    print(SCHEDULE_ABLATION_HEADER)
    for row in rows:
        print(row.format_row())

    by_name = {row.method: row for row in rows}
    # Both annealers must decisively beat blind random restarts.
    assert by_name["lam"].makespan.mean < by_name["random_search"].makespan.mean - 5.0
    # The adaptive schedule is at least competitive with hill climbing
    # (temperature must not hurt).
    assert (
        by_name["lam"].makespan.mean
        <= by_name["hill_climb"].makespan.mean + 3.0
    )
    # And it meets the paper's real-time constraint on average.
    assert by_name["lam"].makespan.mean < 40.0
