"""A1 — cooling-schedule ablation at an equal move budget.

Thin shim over the registered case ``ablation/schedules``
(:mod:`repro.bench.suites`): the adaptive (Lam) schedule needs no
per-problem tuning yet must stay competitive with modified-Lam, untuned
geometric, zero-temperature hill climbing and random restart.
"""

from benchmarks.conftest import run_case_via


def test_schedule_ablation(benchmark):
    rows = run_case_via(benchmark, "ablation/schedules")["rows"]

    # Both annealers must decisively beat blind random restarts.
    assert rows["lam"]["mean"] < rows["random_search"]["mean"] - 5.0
    # The adaptive schedule is at least competitive with hill climbing
    # (temperature must not hurt).
    assert rows["lam"]["mean"] <= rows["hill_climb"]["mean"] + 3.0
    # And it meets the paper's real-time constraint on average.
    assert rows["lam"]["mean"] < 40.0
