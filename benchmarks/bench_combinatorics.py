"""E4 — solution-space size table (paper section 5, closing paragraphs).

Thin shim over the registered case ``analysis/combinatorics``
(:mod:`repro.bench.suites`).  Pure combinatorics: these numbers must
match the paper *exactly*.
"""

from math import comb

from benchmarks.conftest import run_case_via


def test_solution_space_table(benchmark):
    metrics = run_case_via(benchmark, "analysis/combinatorics")

    # Exact paper numbers.
    assert metrics["chain_7_6"] == 1716
    assert metrics["chain_2_1"] == 3
    assert metrics["total_orders"] == 348_840 == 3 * comb(21, 7)
    assert metrics["placements_2"] == 378
    assert metrics["placements_6"] == 376_740
    assert metrics["combinations_2"] == 131_861_520
    assert metrics["combinations_4"] == 7_142_499_000


def test_linear_extension_counter_speed(benchmark):
    """The DP itself is a substrate worth timing (used by analyses)."""
    from repro.analysis.combinatorics import count_linear_extensions
    from repro.model.motion import motion_detection_application

    application = motion_detection_application()
    count = benchmark(count_linear_extensions, application.dag)
    assert count == 348_840
