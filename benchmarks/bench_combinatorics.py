"""E4 — solution-space size table (paper section 5, closing paragraphs).

Pure combinatorics: these numbers must match the paper *exactly*.
"""

from math import comb

from repro.analysis.combinatorics import (
    chain_interleavings,
    context_placements,
    count_linear_extensions,
    solution_space_report,
)
from repro.model.motion import motion_detection_application


def test_solution_space_table(benchmark):
    application = motion_detection_application()
    report = benchmark.pedantic(
        lambda: solution_space_report(application, context_changes=(2, 4, 6)),
        rounds=1,
        iterations=1,
    )

    print()
    print("Solution-space size (paper section 5)")
    print(report.format_table())
    print(f"first 20 nodes (7-chain || 6-chain): {chain_interleavings([7, 6]):,}")
    print(f"D/E fork (2-chain || 1 node):        {chain_interleavings([2, 1]):,}")

    # Exact paper numbers.
    assert chain_interleavings([7, 6]) == 1716
    assert chain_interleavings([2, 1]) == 3
    assert report.total_orders == 348_840 == 3 * comb(21, 7)
    assert report.placements[2] == 378
    assert report.placements[6] == 376_740
    assert report.combinations[2] == 131_861_520
    assert report.combinations[4] == 7_142_499_000


def test_linear_extension_counter_speed(benchmark):
    """The DP itself is a substrate worth timing (used by analyses)."""
    application = motion_detection_application()
    count = benchmark(count_linear_extensions, application.dag)
    assert count == 348_840
