"""Runner benchmark — parallel sweep scaling and bit-identity.

Thin shim over the registered case ``runner/parallel_scaling``
(:mod:`repro.bench.suites`): the same Fig. 3-style device sweep with
``jobs=1`` and ``jobs=N`` (N = CPU count, capped at 4).  The rows must
be identical — parallelism is a wall-clock knob, never a results knob.

Environment knobs: ``REPRO_BENCH_RUNNER_RUNS`` (runs per size, default
4), ``REPRO_BENCH_RUNNER_ITERS`` (annealer iterations per run, default
4000), ``REPRO_BENCH_RUNNER_ASSERT=0`` (report without asserting the
speedup floor; row identity is never relaxed).
"""

import os

from benchmarks.conftest import run_case_via

RUNS = int(os.environ.get("REPRO_BENCH_RUNNER_RUNS", "4"))
ITERATIONS = int(os.environ.get("REPRO_BENCH_RUNNER_ITERS", "4000"))
ASSERT = os.environ.get("REPRO_BENCH_RUNNER_ASSERT", "1") != "0"
#: With >= 4 physical cores, a 4-worker sweep of this shape should be
#: at least this much faster than sequential (spawn + pickling margin).
SPEEDUP_FLOOR = 2.5


def test_parallel_sweep_scaling(benchmark):
    metrics = run_case_via(
        benchmark,
        "runner/parallel_scaling",
        runs=RUNS,
        iterations=ITERATIONS,
    )

    assert metrics["rows_identical"], "parallel rows must be bit-identical"
    if ASSERT and (os.cpu_count() or 1) >= 4 and metrics["workers"] >= 4:
        assert metrics["speedup"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x with {metrics['workers']} "
            f"workers, got {metrics['speedup']:.2f}x"
        )
