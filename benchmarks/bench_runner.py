"""Runner benchmark — parallel sweep scaling and bit-identity.

Runs the same Fig. 3-style device sweep with ``jobs=1`` and ``jobs=N``
(N = CPU count, capped at 4) and reports the wall-clock speedup.  The
rows must be identical — parallelism is a wall-clock knob, never a
results knob.  The speedup assertion only fires on machines with enough
cores and can be disabled for noisy CI runners.

Run with ``pytest benchmarks/bench_runner.py -s`` to see the table.

Environment knobs: ``REPRO_BENCH_RUNNER_RUNS`` (runs per size, default
4), ``REPRO_BENCH_RUNNER_ITERS`` (annealer iterations per run, default
4000), ``REPRO_BENCH_RUNNER_ASSERT=0`` (report without asserting the
speedup floor; row identity is never relaxed).
"""

import os
import time

from repro.analysis.sweep import run_device_sweep
from repro.model.motion import motion_detection_application

RUNS = int(os.environ.get("REPRO_BENCH_RUNNER_RUNS", "4"))
ITERATIONS = int(os.environ.get("REPRO_BENCH_RUNNER_ITERS", "4000"))
ASSERT = os.environ.get("REPRO_BENCH_RUNNER_ASSERT", "1") != "0"
SIZES = (400, 800, 2000)
#: With >= 4 physical cores, a 4-worker sweep of this shape should be
#: at least this much faster than sequential (spawn + pickling margin).
SPEEDUP_FLOOR = 2.5


def test_parallel_sweep_scaling():
    application = motion_detection_application()
    workers = min(os.cpu_count() or 1, 4)

    kwargs = dict(
        sizes=SIZES, runs=RUNS, iterations=ITERATIONS,
        warmup_iterations=min(1200, ITERATIONS // 4), seed0=1,
        engine="incremental",
    )
    started = time.perf_counter()
    sequential = run_device_sweep(application, jobs=1, **kwargs)
    t_seq = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_device_sweep(application, jobs=workers, **kwargs)
    t_par = time.perf_counter() - started

    speedup = t_seq / max(t_par, 1e-9)
    print()
    print(f"device sweep: {len(SIZES)} sizes x {RUNS} runs x "
          f"{ITERATIONS} iterations")
    print(f"{'jobs':>6} {'wall (s)':>10}")
    print(f"{1:>6} {t_seq:>10.2f}")
    print(f"{workers:>6} {t_par:>10.2f}")
    print(f"speedup: {speedup:.2f}x on {os.cpu_count()} visible cores")

    assert sequential == parallel, "parallel rows must be bit-identical"
    if ASSERT and (os.cpu_count() or 1) >= 4 and workers >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x with {workers} workers, "
            f"got {speedup:.2f}x"
        )
