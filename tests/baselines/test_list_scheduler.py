"""Tests for list scheduling and partition decoding."""

import pytest

from repro.baselines.list_scheduler import decode_partition, list_schedule_software
from repro.errors import MappingError
from repro.mapping.evaluator import Evaluator


class TestListSchedule:
    def test_topological_restriction(self, small_app):
        order = list_schedule_software(small_app, [0, 1, 2, 3, 4, 5])
        pos = {t: i for i, t in enumerate(order)}
        for src, dst, _ in small_app.dependencies():
            assert pos[src] < pos[dst]

    def test_subset_only(self, small_app):
        order = list_schedule_software(small_app, [0, 4, 5])
        assert order == [0, 4, 5]

    def test_critical_branch_scheduled_first(self, small_app):
        # 1 (6 ms) is on the longer branch than 2 (4 ms)
        order = list_schedule_software(small_app, [0, 1, 2, 3, 4, 5])
        assert order.index(1) < order.index(2)

    def test_unknown_task_rejected(self, small_app):
        with pytest.raises(MappingError):
            list_schedule_software(small_app, [0, 99])


class TestDecodePartition:
    def test_all_software(self, small_app, small_arch):
        solution = decode_partition(small_app, small_arch, hw_tasks=[])
        solution.validate()
        assert solution.hardware_tasks() == []
        ev = Evaluator(small_app, small_arch).evaluate(solution)
        assert ev.feasible
        assert ev.makespan_ms == pytest.approx(21.0)

    def test_hw_subset_with_impl_choices(self, small_app, small_arch):
        solution = decode_partition(
            small_app, small_arch, hw_tasks=[1, 3], impl_choice={1: 1}
        )
        solution.validate()
        assert sorted(solution.hardware_tasks()) == [1, 3]
        assert solution.task_clbs(1) == 200
        ev = Evaluator(small_app, small_arch).evaluate(solution)
        assert ev.feasible

    def test_capacity_forces_two_contexts(self, small_app, small_arch):
        solution = decode_partition(
            small_app, small_arch,
            hw_tasks=[1, 2, 3],
            impl_choice={1: 1, 2: 1},  # 200 + 160 > 300
        )
        assert solution.num_contexts("fpga") == 2
        ev = Evaluator(small_app, small_arch).evaluate(solution)
        assert ev.feasible

    def test_software_only_task_rejected(self, small_app, small_arch):
        with pytest.raises(MappingError):
            decode_partition(small_app, small_arch, hw_tasks=[0])

    def test_duplicate_hw_tasks_deduped(self, small_app, small_arch):
        solution = decode_partition(small_app, small_arch, hw_tasks=[1, 1])
        assert solution.hardware_tasks() == [1]
