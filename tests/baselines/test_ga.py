"""Tests for the GA baseline."""

import pytest

from repro.baselines.ga import GeneticConfig, GeneticPartitioner
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluator


def make_ga(app, arch, **kwargs):
    defaults = dict(population_size=20, generations=5, seed=3)
    defaults.update(kwargs)
    return GeneticPartitioner(app, arch, GeneticConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeneticConfig(population_size=1).validate()
        with pytest.raises(ConfigurationError):
            GeneticConfig(generations=0).validate()
        with pytest.raises(ConfigurationError):
            GeneticConfig(crossover_rate=1.5).validate()
        with pytest.raises(ConfigurationError):
            GeneticConfig(mutation_rate=-0.1).validate()
        with pytest.raises(ConfigurationError):
            GeneticConfig(tournament_size=0).validate()
        with pytest.raises(ConfigurationError):
            GeneticConfig(population_size=5, elitism=5).validate()


class TestChromosomes:
    def test_decode_respects_genes(self, small_app, small_arch):
        ga = make_ga(small_app, small_arch)
        chromosome = (-1, 1, 0)  # tasks 1(sw), 2(hw impl1), 3(hw impl0)
        solution = ga.decode(chromosome)
        assert solution.resource_name_of(1) == "cpu"
        assert solution.context_of(2) is not None
        assert solution.implementation_choice(2) == 1
        solution.validate()

    def test_random_chromosome_in_bounds(self, small_app, small_arch):
        import random
        ga = make_ga(small_app, small_arch)
        rng = random.Random(0)
        for _ in range(50):
            genes = ga.random_chromosome(rng)
            assert len(genes) == 3
            for g, t in zip(genes, (1, 2, 3)):
                assert -1 <= g < small_app.task(t).num_implementations

    def test_fitness_is_evaluator_makespan(self, small_app, small_arch):
        ga = make_ga(small_app, small_arch)
        all_sw = (-1, -1, -1)
        assert ga.fitness(all_sw) == pytest.approx(21.0)


class TestRun:
    def test_improves_over_generations(self, small_app, small_arch):
        ga = make_ga(small_app, small_arch, generations=8)
        result = ga.run()
        assert result.history[-1] <= result.history[0]
        assert result.best_cost == result.history[-1]
        result.best_solution.validate()
        ev = Evaluator(small_app, small_arch).evaluate(result.best_solution)
        assert ev.feasible
        assert ev.makespan_ms == pytest.approx(result.best_cost)

    def test_deterministic_for_seed(self, small_app, small_arch):
        a = make_ga(small_app, small_arch).run().best_cost
        b = make_ga(small_app, small_arch).run().best_cost
        assert a == b

    def test_history_length(self, small_app, small_arch):
        result = make_ga(small_app, small_arch, generations=5).run()
        assert len(result.history) == 6  # initial + one per generation
        assert result.generations_run == 5

    def test_motion_benchmark_beats_all_software(self, motion_app, epicure):
        ga = GeneticPartitioner(
            motion_app, epicure,
            GeneticConfig(population_size=30, generations=6, seed=1),
        )
        result = ga.run()
        assert result.best_cost < motion_app.total_sw_time_ms()
