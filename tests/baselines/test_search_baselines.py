"""Tests for tabu search, hill climbing and random search."""

import random

import pytest

from repro.baselines.hill_climber import HillClimber
from repro.baselines.random_search import RandomSearch
from repro.baselines.tabu import TabuConfig, TabuSearch
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import MoveGenerator


class TestTabu:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TabuConfig(iterations=0).validate()
        with pytest.raises(ConfigurationError):
            TabuConfig(candidates_per_iteration=0).validate()
        with pytest.raises(ConfigurationError):
            TabuConfig(tabu_tenure=-1).validate()

    def test_improves_and_stays_consistent(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        generator = MoveGenerator(small_app, p_impl=0.2, p_offload=0.2)
        search = TabuSearch(
            evaluator, generator,
            TabuConfig(iterations=150, candidates_per_iteration=4, seed=2),
        )
        initial = random_initial_solution(
            small_app, small_arch, random.Random(2)
        )
        initial_cost = evaluator.makespan_ms(initial)
        result = search.run(initial)
        assert result.best_cost <= initial_cost
        result.best_solution.validate()
        assert evaluator.evaluate(result.best_solution).makespan_ms == (
            pytest.approx(result.best_cost)
        )

    def test_history_tracks_iterations(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        generator = MoveGenerator(small_app)
        search = TabuSearch(
            evaluator, generator, TabuConfig(iterations=50, seed=1)
        )
        initial = random_initial_solution(
            small_app, small_arch, random.Random(1)
        )
        result = search.run(initial)
        assert len(result.history) == 51


class TestHillClimber:
    def test_monotone_history(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        generator = MoveGenerator(small_app, p_impl=0.2, p_offload=0.2)
        climber = HillClimber(evaluator, generator, iterations=200, seed=3)
        initial = random_initial_solution(
            small_app, small_arch, random.Random(3)
        )
        result = climber.run(initial)
        for a, b in zip(result.history, result.history[1:]):
            assert b <= a
        result.best_solution.validate()

    def test_invalid_iterations(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        with pytest.raises(ConfigurationError):
            HillClimber(evaluator, MoveGenerator(small_app), iterations=0)


class TestRandomSearch:
    def test_best_of_samples(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        search = RandomSearch(
            small_app, small_arch, evaluator, samples=30, seed=4
        )
        result = search.run()
        assert result.samples == 30
        assert len(result.history) == 30
        for a, b in zip(result.history, result.history[1:]):
            assert b <= a
        result.best_solution.validate()

    def test_invalid_samples(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        with pytest.raises(ConfigurationError):
            RandomSearch(small_app, small_arch, evaluator, samples=0)

    def test_engine_knob_builds_evaluator(self, small_app, small_arch):
        """The engine plumbing every other searcher has (PR 1) reaches
        random search too: same samples, same best cost, both engines."""
        results = {}
        for engine in ("full", "incremental"):
            search = RandomSearch(
                small_app, small_arch, samples=20, seed=9, engine=engine
            )
            assert search.evaluator.engine_name == engine
            results[engine] = search.run()
        assert results["full"].best_cost == results["incremental"].best_cost
        assert results["full"].history == results["incremental"].history
