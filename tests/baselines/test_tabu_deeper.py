"""Deeper tabu-search behavior tests (tenure, aspiration, motion run)."""

import random

import pytest

from repro.baselines.tabu import TabuConfig, TabuSearch, _moved_task
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import ImplementationMove, MoveGenerator, ReorderMove


class TestMovedTask:
    def test_extracts_task_attribute(self):
        assert _moved_task(ReorderMove(task=3, dest_task=1)) == 3
        assert _moved_task(ImplementationMove(task=5, new_choice=1)) == 5


class TestTenure:
    def test_zero_tenure_never_blocks(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        generator = MoveGenerator(small_app, p_impl=0.2, p_offload=0.2)
        search = TabuSearch(
            evaluator, generator,
            TabuConfig(iterations=80, tabu_tenure=0, seed=4),
        )
        initial = random_initial_solution(
            small_app, small_arch, random.Random(4)
        )
        result = search.run(initial)
        assert result.best_cost <= result.history[0]

    def test_motion_benchmark_beats_all_software(self, motion_app, epicure):
        evaluator = Evaluator(motion_app, epicure)
        generator = MoveGenerator(motion_app, p_impl=0.2, p_offload=0.2)
        search = TabuSearch(
            evaluator, generator,
            TabuConfig(iterations=250, candidates_per_iteration=6, seed=2),
        )
        initial = random_initial_solution(
            motion_app, epicure, random.Random(2)
        )
        result = search.run(initial)
        assert result.best_cost < motion_app.total_sw_time_ms()
        result.best_solution.validate()
