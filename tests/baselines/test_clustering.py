"""Tests for the capacity-driven clustering temporal partitioner."""

import pytest

from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.baselines.clustering import cluster_into_contexts
from repro.errors import CapacityError


class TestClustering:
    def test_single_context_when_everything_fits(self, small_app):
        rc = ReconfigurableCircuit("rc", n_clbs=1000)
        contexts = cluster_into_contexts(
            small_app, rc, [1, 2, 3], {1: 100, 2: 80, 3: 120}
        )
        assert contexts == [[1, 2, 3]]

    def test_splits_on_capacity(self, small_app):
        rc = ReconfigurableCircuit("rc", n_clbs=200)
        contexts = cluster_into_contexts(
            small_app, rc, [1, 2, 3], {1: 100, 2: 80, 3: 120}
        )
        assert contexts == [[1, 2], [3]]

    def test_topological_context_order(self, small_app):
        rc = ReconfigurableCircuit("rc", n_clbs=100)
        contexts = cluster_into_contexts(
            small_app, rc, [1, 2, 3], {1: 100, 2: 80, 3: 100}
        )
        # one task per context; 3 (the join) must come last
        assert contexts[-1] == [3]
        flattened = [t for ctx in contexts for t in ctx]
        assert flattened.index(1) < flattened.index(3)
        assert flattened.index(2) < flattened.index(3)

    def test_oversized_task_rejected(self, small_app):
        rc = ReconfigurableCircuit("rc", n_clbs=50)
        with pytest.raises(CapacityError):
            cluster_into_contexts(small_app, rc, [1], {1: 100})

    def test_empty_hw_set(self, small_app):
        rc = ReconfigurableCircuit("rc", n_clbs=100)
        assert cluster_into_contexts(small_app, rc, [], {}) == []
