"""Two reconfigurable circuits — the paper's "at least one RC"."""

import random

import pytest

from repro.arch.architecture import Architecture
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.mapping.evaluator import Evaluator
from repro.mapping.simulator import simulate
from repro.mapping.solution import Solution, random_initial_solution
from repro.model.motion import motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer


def dual_fpga_arch():
    arch = Architecture("dual_fpga", bus=Bus(rate_kbytes_per_ms=50.0))
    arch.add_resource(Processor("arm922"))
    arch.add_resource(
        ReconfigurableCircuit("fpga_a", n_clbs=600, reconfig_ms_per_clb=0.0225)
    )
    arch.add_resource(
        ReconfigurableCircuit("fpga_b", n_clbs=600, reconfig_ms_per_clb=0.0225)
    )
    return arch


class TestDualFpga:
    def test_random_solutions_feasible(self):
        app = motion_detection_application()
        arch = dual_fpga_arch()
        evaluator = Evaluator(app, arch)
        for seed in range(8):
            solution = random_initial_solution(app, arch, random.Random(seed))
            solution.validate()
            ev = evaluator.evaluate(solution)
            assert ev.feasible

    def test_each_device_gets_its_own_config_node(self):
        app = motion_detection_application()
        arch = dual_fpga_arch()
        solution = Solution(app, arch)
        order = app.topological_order()
        hw = [t for t in order if app.task(t).hardware_capable]
        for t in order:
            if t == hw[0]:
                solution.spawn_context(t, "fpga_a")
            elif t == hw[1]:
                solution.spawn_context(t, "fpga_b")
            else:
                solution.assign_to_processor(t, "arm922")
        evaluator = Evaluator(app, arch)
        graph = evaluator.realize(solution)
        config_rcs = {node[1] for node in graph.config_nodes}
        assert config_rcs == {"fpga_a", "fpga_b"}
        # independent devices: contexts on different RCs may overlap,
        # and the simulator still agrees with the longest path
        assert simulate(solution, graph).makespan_ms == pytest.approx(
            graph.makespan_ms()
        )

    def test_exploration_can_use_both_devices(self):
        app = motion_detection_application()
        arch = dual_fpga_arch()
        explorer = DesignSpaceExplorer(
            app, arch, iterations=4000, warmup_iterations=700, seed=5,
            keep_trace=False,
        )
        result = explorer.run()
        ev = result.best_evaluation
        assert ev.feasible
        assert ev.makespan_ms < app.total_sw_time_ms()
        used = [
            rc.name
            for rc in arch.reconfigurable_circuits()
            if result.best_solution.contexts(rc.name)
        ]
        assert used, "at least one device must end up used"
