"""Cross-module integration scenarios beyond the paper's platform."""

import random

import pytest

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.mapping.evaluator import Evaluator
from repro.mapping.simulator import simulate
from repro.mapping.solution import random_initial_solution
from repro.model.generator import GeneratorConfig, random_application
from repro.sa.explorer import DesignSpaceExplorer


class TestMultiprocessor:
    """The paper's model is 'at least one' processor; exercise two."""

    def make_arch(self):
        arch = Architecture("dual", bus=Bus(rate_kbytes_per_ms=40.0))
        arch.add_resource(Processor("big", speed_factor=1.0))
        arch.add_resource(Processor("little", speed_factor=0.5))
        arch.add_resource(
            ReconfigurableCircuit("fpga", n_clbs=600, reconfig_ms_per_clb=0.02)
        )
        return arch

    def test_exploration_uses_both_processors(self):
        app = random_application(
            GeneratorConfig(num_tasks=24, software_only_fraction=0.4), seed=8
        )
        arch = self.make_arch()
        explorer = DesignSpaceExplorer(
            app, arch, iterations=3000, warmup_iterations=500, seed=8
        )
        result = explorer.run()
        ev = result.best_evaluation
        assert ev.feasible
        # with a half-speed 'little' core, the optimizer should spread
        # software over both (not guaranteed per-seed for 'little', but
        # the 'big' core must be used)
        assert result.best_solution.software_order("big")

    def test_simulator_agrees_on_dual_core(self):
        app = random_application(GeneratorConfig(num_tasks=20), seed=3)
        arch = self.make_arch()
        evaluator = Evaluator(app, arch)
        for seed in range(8):
            solution = random_initial_solution(app, arch, random.Random(seed))
            graph = evaluator.realize(solution)
            assert simulate(solution, graph).makespan_ms == pytest.approx(
                graph.makespan_ms()
            )


class TestAsicPlatform:
    def test_asic_runs_tasks_in_parallel(self):
        """An ASIC imposes no order: independent tasks overlap."""
        app = random_application(
            GeneratorConfig(num_tasks=12, software_only_fraction=0.0), seed=6
        )
        arch = Architecture("asic_platform", bus=Bus())
        arch.add_resource(Processor("cpu"))
        arch.add_resource(Asic("accel"))
        evaluator = Evaluator(app, arch)

        from repro.mapping.solution import Solution
        solution = Solution(app, arch)
        order = app.topological_order()
        for t in order[: len(order) // 2]:
            solution.assign_to_processor(t, "cpu")
        for t in order[len(order) // 2:]:
            solution.assign_to_asic(t, "accel")
        solution.validate()
        ev = evaluator.evaluate(solution)
        assert ev.feasible
        graph = evaluator.realize(solution)
        assert simulate(solution, graph).makespan_ms == pytest.approx(
            ev.makespan_ms
        )


class TestFullReconfigurationDevice:
    def test_full_reconfig_costs_whole_fabric(self):
        rc = ReconfigurableCircuit(
            "flat", n_clbs=1000, reconfig_ms_per_clb=0.01,
            partial_reconfiguration=False,
        )
        assert rc.reconfiguration_time_ms(100) == pytest.approx(10.0)
        assert rc.reconfiguration_time_ms(900) == pytest.approx(10.0)
        assert rc.reconfiguration_time_ms(0) == 0.0

    def test_partial_is_default(self):
        rc = ReconfigurableCircuit("p", n_clbs=1000, reconfig_ms_per_clb=0.01)
        assert rc.partial_reconfiguration
        assert rc.reconfiguration_time_ms(100) == pytest.approx(1.0)

    def test_full_reconfig_discourages_contexts(self):
        """On a full-reconfiguration device, the optimizer should use
        no more contexts than on the partial one (45 ms per switch)."""
        from repro.model.motion import motion_detection_application

        app = motion_detection_application()

        def run(partial):
            arch = Architecture("x", bus=Bus(rate_kbytes_per_ms=50.0))
            arch.add_resource(Processor("arm922"))
            arch.add_resource(
                ReconfigurableCircuit(
                    "virtex", n_clbs=2000, reconfig_ms_per_clb=0.0225,
                    partial_reconfiguration=partial,
                )
            )
            explorer = DesignSpaceExplorer(
                app, arch, iterations=3000, warmup_iterations=500, seed=5,
                keep_trace=False,
            )
            return explorer.run().best_evaluation

        partial_ev = run(True)
        full_ev = run(False)
        assert full_ev.num_contexts <= partial_ev.num_contexts
        assert partial_ev.makespan_ms <= full_ev.makespan_ms + 1e-9


class TestAnnealerInvariants:
    def test_best_cost_monotone_in_trace(self, motion_app, epicure):
        explorer = DesignSpaceExplorer(
            motion_app, epicure, iterations=2000, warmup_iterations=400,
            seed=13,
        )
        result = explorer.run()
        best_costs = [r.best_cost for r in result.trace]
        for a, b in zip(best_costs, best_costs[1:]):
            assert b <= a + 1e-12

    def test_trace_costs_are_achievable(self, motion_app, epicure):
        """The final best cost in the trace equals the re-evaluated
        best solution's makespan (no stale bookkeeping)."""
        explorer = DesignSpaceExplorer(
            motion_app, epicure, iterations=1500, warmup_iterations=300,
            seed=21,
        )
        result = explorer.run()
        check = explorer.evaluator.evaluate(result.best_solution)
        assert check.makespan_ms == pytest.approx(result.trace[-1].best_cost)
