"""Warm-started and anytime serving through the service front door.

The PR contract: a cache miss whose instance is structurally identical
to a completed record's gets its queued job rewritten to anneal from
the donor's best solution (warmup skipped), under the *original*
request's cache key; ``submit_anytime`` serves a deadline-capped
best-so-far envelope while the full job stays queued.
"""

import copy
import json

import pytest

from repro.api.specs import (
    ApplicationSpec,
    BudgetSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.errors import ServiceError
from repro.io import ProblemInstance, instance_to_dict
from repro.obs.telemetry import Telemetry
from repro.service import ExplorationService
from repro.service.store import instance_info_for


@pytest.fixture
def instance_doc(small_app, small_arch):
    return instance_to_dict(
        ProblemInstance(small_app, small_arch, deadline_ms=40.0)
    )


def bundled_request(document, **overrides):
    base = dict(
        kind="single",
        application=ApplicationSpec(kind="bundled", document=document),
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=BudgetSpec(iterations=60, warmup_iterations=10),
        seed=3,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


def perturb(document, factor=1.1):
    """A param-only drift: same structure digest, new instance hash."""
    drifted = copy.deepcopy(document)
    task = drifted["application"]["tasks"][0]
    task["sw_time_ms"] = task["sw_time_ms"] * factor
    return drifted


@pytest.fixture
def service(tmp_path):
    return ExplorationService(str(tmp_path / "store"))


class TestNearIndexStore:
    def test_submit_registers_instance_and_near_marker(
        self, service, instance_doc
    ):
        request = bundled_request(instance_doc)
        info = instance_info_for(request)
        outcome = service.submit(request)
        record = service.status(outcome.key)
        assert record.structure_hash == info.structure_hash
        assert service.store.near_keys(info.structure_hash) == [outcome.key]
        assert (
            service.store.instance_document(info.instance_hash)
            == info.document
        )

    def test_near_bucket_collects_structure_mates(
        self, service, instance_doc
    ):
        first = service.submit(bundled_request(instance_doc))
        second = service.submit(bundled_request(perturb(instance_doc)))
        assert first.key != second.key
        info = instance_info_for(bundled_request(instance_doc))
        assert sorted([first.key, second.key]) == service.store.near_keys(
            info.structure_hash
        )

    def test_delete_record_unlinks_near_marker(self, service, instance_doc):
        outcome = service.submit(bundled_request(instance_doc))
        info = instance_info_for(bundled_request(instance_doc))
        service.store.delete_record(outcome.key)
        assert service.store.near_keys(info.structure_hash) == []

    def test_index_near_is_idempotent(self, service):
        service.store.index_near("s" * 64, "k" * 64)
        service.store.index_near("s" * 64, "k" * 64)
        assert service.store.near_keys("s" * 64) == ["k" * 64]

    def test_record_round_trips_warm_fields(self, service, instance_doc):
        outcome = service.submit(bundled_request(instance_doc))
        record = service.status(outcome.key)
        record.warm_start = {"donor": "d", "delta": {}, "repairs": 2}
        service.store.write_record(record)
        reloaded = service.status(outcome.key)
        assert reloaded.structure_hash == record.structure_hash
        assert reloaded.warm_start == {
            "donor": "d", "delta": {}, "repairs": 2,
        }


class TestWarmStartSubmit:
    def _donor(self, service, instance_doc):
        donor = service.submit(bundled_request(instance_doc))
        assert service.run_local() == 1
        return donor

    def test_perturbed_resubmit_is_warm_started(
        self, service, instance_doc
    ):
        donor = self._donor(service, instance_doc)
        warm = service.submit(bundled_request(perturb(instance_doc)))
        assert warm.status == "queued"
        record = service.status(warm.key)
        assert record.warm_start is not None
        assert record.warm_start["donor"] == donor.key
        assert record.warm_start["delta"]["kind"] == "param"
        assert record.warm_start["delta"]["size"] == 1
        strategy = record.request["strategy"]
        assert strategy["initial_solution"]["format"] == "solution"
        assert record.request["budget"]["warmup_iterations"] == 0
        # the rewritten job still executes and completes
        assert service.run_local() == 1
        assert service.status(warm.key).status == "done"

    def test_cache_key_is_the_original_requests(
        self, service, instance_doc
    ):
        self._donor(service, instance_doc)
        perturbed_request = bundled_request(perturb(instance_doc))
        warm = service.submit(perturbed_request)
        assert warm.key == service.key_of(perturbed_request)
        service.run_local()
        hit = service.submit(perturbed_request)
        assert hit.status == "hit"

    def test_no_donor_no_warm_start(self, service, instance_doc):
        outcome = service.submit(bundled_request(instance_doc))
        assert service.status(outcome.key).warm_start is None

    def test_pending_donor_does_not_seed(self, service, instance_doc):
        service.submit(bundled_request(instance_doc))  # never executed
        warm = service.submit(bundled_request(perturb(instance_doc)))
        assert service.status(warm.key).warm_start is None

    def test_non_warm_strategy_is_skipped(self, service, instance_doc):
        self._donor(service, instance_doc)
        outcome = service.submit(
            bundled_request(
                perturb(instance_doc),
                strategy=StrategySpec("random", {}),
                budget=BudgetSpec(iterations=60),
            )
        )
        assert service.status(outcome.key).warm_start is None

    def test_client_seed_is_not_overwritten(self, service, instance_doc):
        donor = self._donor(service, instance_doc)
        envelope = service.result(donor.key)
        seed_doc = envelope.best["solution"]
        outcome = service.submit(
            bundled_request(
                perturb(instance_doc),
                strategy=StrategySpec(
                    "sa", {"keep_trace": False},
                    initial_solution=seed_doc,
                ),
            )
        )
        record = service.status(outcome.key)
        assert record.warm_start is None
        assert (
            record.request["strategy"]["initial_solution"] == seed_doc
        )

    def test_smallest_delta_donor_wins(self, service, instance_doc):
        self._donor(service, instance_doc)
        far = service.submit(bundled_request(perturb(instance_doc, 3.0)))
        service.run_local()
        # both donors are done; the new submit differs from the original
        # by 1 field and from `far` by 2 -> the original wins
        near_doc = copy.deepcopy(instance_doc)
        near_doc["deadline_ms"] = 41.0
        warm = service.submit(bundled_request(near_doc))
        record = service.status(warm.key)
        assert record.warm_start is not None
        assert record.warm_start["donor"] != far.key
        assert record.warm_start["delta"]["size"] == 1

    def test_warm_run_is_deterministic(self, tmp_path, instance_doc):
        from repro.obs.telemetry import strip_times

        envelopes = []
        for name in ("a", "b"):
            service = ExplorationService(str(tmp_path / name))
            service.submit(bundled_request(instance_doc))
            service.run_local()
            warm = service.submit(bundled_request(perturb(instance_doc)))
            assert service.status(warm.key).warm_start is not None
            service.run_local()
            envelopes.append(
                strip_times(
                    json.loads(service.store.response_text(warm.key))
                )
            )
        assert envelopes[0] == envelopes[1]

    def test_stats_and_telemetry_count_warm_starts(
        self, tmp_path, instance_doc
    ):
        telemetry = Telemetry(label="svc")
        service = ExplorationService(
            str(tmp_path / "store"), telemetry=telemetry
        )
        service.submit(bundled_request(instance_doc))
        service.run_local()
        service.submit(bundled_request(perturb(instance_doc)))
        stats = service.stats()
        assert stats["warm_start_hits"] == 1
        assert stats["warm_start_repairs"] >= 0
        assert telemetry.counters["warm_start_hit"] == 1

    def test_gc_prunes_orphan_near_markers(self, service, instance_doc):
        outcome = service.submit(bundled_request(instance_doc))
        record = service.status(outcome.key)
        marker = service.store.near_marker(
            record.structure_hash, "f" * 64
        )
        with open(marker, "w"):
            pass
        removed = service.gc(failed=False)
        assert removed["orphan_tickets"] == 1
        info = instance_info_for(bundled_request(instance_doc))
        assert service.store.near_keys(info.structure_hash) == [outcome.key]


class TestSubmitAnytime:
    def test_rejects_non_positive_deadline(self, service, instance_doc):
        with pytest.raises(ServiceError, match="deadline_s"):
            service.submit_anytime(
                bundled_request(instance_doc), deadline_s=0.0
            )

    def test_miss_returns_partial_and_record_stays_pending(
        self, service, instance_doc
    ):
        request = bundled_request(instance_doc, budget=BudgetSpec(
            iterations=200_000, warmup_iterations=0,
        ))
        outcome = service.submit_anytime(request, deadline_s=0.3)
        assert outcome.status == "partial"
        assert outcome.response.summary["partial"] is True
        assert outcome.response.best is not None
        assert outcome.response_text is None  # live-only, never cached
        record = service.status(outcome.key)
        assert record.status == "pending"
        with pytest.raises(ServiceError, match="no result"):
            service.result(outcome.key)
        # the envelope is well-formed JSON end to end
        json.loads(outcome.response.to_json())

    def test_full_job_still_completes_after_partial(
        self, service, instance_doc
    ):
        request = bundled_request(instance_doc)
        partial = service.submit_anytime(request, deadline_s=5.0)
        assert partial.status == "partial"
        assert service.run_local() == 1
        hit = service.submit_anytime(request, deadline_s=5.0)
        assert hit.status == "hit"
        assert hit.response_text is not None

    def test_partial_runs_the_warm_rewritten_job(
        self, service, instance_doc
    ):
        service.submit(bundled_request(instance_doc))
        service.run_local()
        outcome = service.submit_anytime(
            bundled_request(perturb(instance_doc)), deadline_s=5.0
        )
        assert outcome.status == "partial"
        assert service.status(outcome.key).warm_start is not None

    def test_counts_anytime_partial(self, tmp_path, instance_doc):
        telemetry = Telemetry(label="svc")
        service = ExplorationService(
            str(tmp_path / "store"), telemetry=telemetry
        )
        service.submit_anytime(
            bundled_request(instance_doc), deadline_s=5.0
        )
        assert telemetry.counters["anytime_partial"] == 1
