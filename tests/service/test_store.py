"""Store layer: cache keys, record rows, atomic persistence."""

import hashlib
import json
import os

import pytest

from repro.api.specs import (
    ApplicationSpec,
    BudgetSpec,
    ExplorationRequest,
)
from repro.errors import ConfigurationError, ServiceError
from repro.io import application_to_dict
from repro.model.generator import GeneratorConfig, random_application
from repro.service.store import (
    JobRecord,
    ResultStore,
    compose_cache_key,
    instance_hash_for,
)


def small_request(**overrides):
    base = dict(
        kind="single",
        budget=BudgetSpec(iterations=60, warmup_iterations=10),
        seed=1,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


class TestCacheKey:
    def test_key_composes_both_digests(self, store):
        request = small_request()
        key, request_hash, instance_hash = store.cache_key(request)
        assert request_hash == request.content_hash()
        assert instance_hash == instance_hash_for(request)
        assert key == compose_cache_key(request_hash, instance_hash)
        assert key == hashlib.sha256(
            f"{request_hash}:{instance_hash}".encode("ascii")
        ).hexdigest()

    def test_identical_requests_share_a_key(self, store):
        assert store.cache_key(small_request())[0] == \
            store.cache_key(small_request())[0]

    def test_different_seed_different_key(self, store):
        assert store.cache_key(small_request(seed=1))[0] != \
            store.cache_key(small_request(seed=2))[0]

    def test_file_content_change_changes_the_key(self, store, tmp_path):
        # The request hash alone cannot see through a path reference;
        # the composed instance hash must.  Same path, different bytes
        # underneath -> different cache key.
        path = str(tmp_path / "application.json")
        app_a = random_application(GeneratorConfig(num_tasks=6), seed=1)
        app_b = random_application(GeneratorConfig(num_tasks=6), seed=2)
        request = small_request(
            application=ApplicationSpec(kind="inline", path=path)
        )
        with open(path, "w") as handle:
            json.dump(application_to_dict(app_a), handle)
        key_a = store.cache_key(request)
        with open(path, "w") as handle:
            json.dump(application_to_dict(app_b), handle)
        key_b = store.cache_key(request)
        assert key_a[1] == key_b[1]  # same request hash...
        assert key_a[2] != key_b[2]  # ...different instance hash
        assert key_a[0] != key_b[0]

    def test_sweep_requests_get_keys(self, store):
        request = small_request(
            kind="sweep", sizes=(200, 400), runs=2, seed=3
        )
        key, _, _ = store.cache_key(request)
        assert len(key) == 64


class TestJobRecord:
    def _record(self):
        return JobRecord(
            key="k" * 64, request_hash="r" * 64, instance_hash="i" * 64,
            request=small_request().to_dict(), created_ts=100.0,
        )

    def test_lifecycle_transitions(self):
        record = self._record()
        record.transition("pending", now=100.0)
        record.transition("running", worker="w0", now=101.0)
        assert record.attempts == 1
        assert record.claimed_ts == 101.0
        assert record.worker == "w0"
        record.transition("done", worker="w0", now=102.0)
        assert record.completed_ts == 102.0
        assert [h["status"] for h in record.history] == \
            ["pending", "running", "done"]

    def test_requeue_keeps_attempts_and_history(self):
        record = self._record()
        record.transition("running", worker="w0", now=1.0)
        record.transition("pending", error="requeued", now=2.0)
        assert record.attempts == 1
        assert record.worker is None
        assert record.history[-1]["error"] == "requeued"

    def test_unknown_status_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown record"):
            self._record().transition("paused")

    def test_dict_round_trip(self):
        record = self._record()
        record.transition("running", worker="w0", now=1.0)
        record.transition("failed", error="boom", now=2.0)
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_wrong_format_rejected(self):
        with pytest.raises(ServiceError, match="exploration-record"):
            JobRecord.from_dict({"format": "exploration-response"})

    def test_unknown_disk_status_rejected(self):
        data = self._record().to_dict()
        data["status"] = "paused"
        with pytest.raises(ServiceError, match="unknown status"):
            JobRecord.from_dict(data)

    def test_future_schema_rejected(self):
        data = self._record().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ServiceError, match="schema_version"):
            JobRecord.from_dict(data)


class TestResultStore:
    def test_create_record_is_exclusive(self, store):
        request = small_request()
        key, rh, ih = store.cache_key(request)
        first, created = store.create_record(key, rh, ih, request.to_dict())
        assert created
        assert first.status == "pending"
        second, created_again = store.create_record(
            key, rh, ih, request.to_dict()
        )
        assert not created_again
        assert second.key == first.key

    def test_load_missing_record(self, store):
        with pytest.raises(ServiceError, match="no record"):
            store.load_record("0" * 64)

    def test_corrupt_record_is_a_service_error(self, store):
        key = "1" * 64
        with open(store.record_path(key), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ServiceError, match="not valid JSON"):
            store.load_record(key)

    def test_write_then_load(self, store):
        request = small_request()
        key, rh, ih = store.cache_key(request)
        record, _ = store.create_record(key, rh, ih, request.to_dict())
        record.transition("running", worker="w0")
        store.write_record(record)
        assert store.load_record(key).status == "running"
        assert store.list_keys() == [key]

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(ServiceError, match="no exploration store"):
            ResultStore(str(tmp_path / "absent"), create=False)

    def test_response_bytes_round_trip(self, store):
        from repro.api.facade import explore

        response = explore(small_request())
        key = "2" * 64
        written = store.put_response(key, response)
        assert store.response_text(key) == written
        assert store.get_response(key).to_json() == written

    def test_missing_response(self, store):
        with pytest.raises(ServiceError, match="no result envelope"):
            store.response_text("3" * 64)

    def test_delete_record_removes_all_files(self, store):
        request = small_request()
        key, rh, ih = store.cache_key(request)
        store.create_record(key, rh, ih, request.to_dict())
        for path in (store.queue_ticket(key), store.result_path(key)):
            with open(path, "w") as handle:
                handle.write("x")
        store.delete_record(key)
        assert not store.has_record(key)
        assert not os.path.exists(store.queue_ticket(key))
        assert not os.path.exists(store.result_path(key))
