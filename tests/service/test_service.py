"""Front door: cache-first submit, dedupe guarantees, stats, gc.

The acceptance contract of the service lives here: a byte-identical
request submitted twice performs exactly one computation — sequentially
*and* when the submits race — and the cache-served envelope is
byte-identical to the computed one.
"""

import threading

import pytest

from repro.api.specs import BudgetSpec, ExplorationRequest
from repro.errors import ServiceError
from repro.obs.telemetry import Telemetry
from repro.service import ExplorationService
from repro.service.service import STATS_FORMAT, STATS_SCHEMA_VERSION


def small_request(**overrides):
    base = dict(
        kind="single",
        budget=BudgetSpec(iterations=60, warmup_iterations=10),
        seed=1,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


@pytest.fixture
def service(tmp_path):
    return ExplorationService(str(tmp_path / "store"))


class TestSequentialDedupe:
    def test_one_computation_then_cache_hits(self, service):
        request = small_request()
        first = service.submit(request)
        assert first.status == "queued"
        again = service.submit(request)
        assert again.status == "inflight"
        assert again.key == first.key

        assert service.run_local() == 1

        hit = service.submit(request)
        assert hit.status == "hit"
        assert hit.cached
        record = service.status(first.key)
        assert record.attempts == 1  # exactly one computation
        assert record.hits == 1

    def test_cached_envelope_is_byte_identical_to_computed(self, service):
        request = small_request()
        key = service.submit(request).key
        # compute through the worker path, keeping the live response
        assert service.queue.claim("w0") == key
        computed = service.queue.execute(key)
        hit = service.submit(request)
        assert hit.status == "hit"
        assert hit.response_text == computed.to_json()
        assert hit.response.to_json() == computed.to_json()

    def test_distinct_requests_do_not_collide(self, service):
        one = service.submit(small_request(seed=1))
        two = service.submit(small_request(seed=2))
        assert one.key != two.key
        assert one.status == two.status == "queued"
        assert service.run_local() == 2

    def test_result_raises_until_done(self, service):
        key = service.submit(small_request()).key
        with pytest.raises(ServiceError, match="no result"):
            service.result(key)
        service.run_local()
        assert service.result(key).kind == "single"

    def test_wait_settles(self, service):
        key = service.submit(small_request()).key
        service.run_local()
        assert service.wait(key, timeout_s=1.0).status == "done"

    def test_wait_times_out(self, service):
        key = service.submit(small_request()).key
        with pytest.raises(ServiceError, match="timed out"):
            service.wait(key, timeout_s=0.05, poll_s=0.01)


class TestRacingDedupe:
    def test_racing_submits_yield_exactly_one_queued(self, service):
        request = small_request(seed=9)
        racers = 8
        barrier = threading.Barrier(racers)
        outcomes = [None] * racers

        def racer(index):
            # each thread gets its own service handle on the shared root
            svc = ExplorationService(service.store.root)
            barrier.wait()
            outcomes[index] = svc.submit(request)

        threads = [
            threading.Thread(target=racer, args=(i,)) for i in range(racers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        statuses = sorted(o.status for o in outcomes)
        assert statuses.count("queued") == 1
        assert statuses.count("inflight") == racers - 1
        assert len({o.key for o in outcomes}) == 1

        assert service.run_local() == 1
        assert service.status(outcomes[0].key).attempts == 1

    def test_hits_after_the_race_serve_identical_bytes(self, service):
        request = small_request(seed=9)
        service.submit(request)
        service.run_local()
        texts = {
            service.submit(request).response_text for _ in range(3)
        }
        assert len(texts) == 1


class TestFailedResubmit:
    def _fail_one(self, service):
        key = service.submit(small_request(seed=5)).key
        record = service.status(key)
        record.request["strategy"]["kind"] = "no-such-strategy"
        service.store.write_record(record)
        service.run_local()
        assert service.status(key).status == "failed"
        return key

    def test_failed_record_is_resubmitted(self, service):
        key = self._fail_one(service)
        # heal the stored request, then resubmit: back to pending
        record = service.status(key)
        record.request["strategy"]["kind"] = "sa"
        service.store.write_record(record)
        outcome = service.submit(small_request(seed=5))
        assert outcome.key == key
        assert outcome.status == "resubmitted"
        assert service.run_local() == 1
        assert service.status(key).status == "done"
        assert service.status(key).attempts == 2


class TestTelemetry:
    def test_counters_and_phases(self, tmp_path):
        telemetry = Telemetry(label="svc")
        service = ExplorationService(
            str(tmp_path / "store"), telemetry=telemetry
        )
        request = small_request()
        service.submit(request)   # miss
        service.submit(request)   # inflight
        service.run_local()
        service.submit(request)   # hit
        assert telemetry.counters["cache_miss"] == 1
        assert telemetry.counters["dedupe_inflight"] == 1
        assert telemetry.counters["cache_hit"] == 1
        assert telemetry.timers["store_lookup_s"] > 0
        assert telemetry.timers["job_execute_s"] > 0

    def test_stream_summarizes(self, tmp_path):
        from repro.obs.telemetry import (
            load_events, summarize_events, validate_events,
        )

        telemetry = Telemetry(label="svc")
        service = ExplorationService(
            str(tmp_path / "store"), telemetry=telemetry
        )
        request = small_request()
        service.submit(request)
        service.run_local()
        service.submit(request)
        path = str(tmp_path / "svc.jsonl")
        telemetry.write_jsonl_path(path)
        events = load_events(path)
        validate_events(events)
        summary = summarize_events(events)
        assert summary["counters"]["cache_hit"] == 1
        assert summary["counters"]["cache_miss"] == 1
        assert "store_lookup_s" in summary["timers"]
        assert "job_execute_s" in summary["timers"]


class TestStatsAndGc:
    def test_stats_schema(self, service):
        request = small_request()
        service.submit(request)
        service.submit(request)
        service.submit(small_request(seed=2))
        service.run_local()
        service.submit(request)  # hit
        stats = service.stats()
        assert sorted(stats) == [
            "environment", "executions", "failed_attempts", "format",
            "hits", "queue", "records", "results", "root",
            "schema_version", "warm_start_hits", "warm_start_repairs",
        ]
        assert stats["format"] == STATS_FORMAT
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        assert stats["executions"] == 2  # two distinct requests ran once
        assert stats["hits"] == 1
        assert stats["records"] == {
            "pending": 0, "running": 0, "done": 2, "failed": 0, "total": 2,
        }
        assert stats["queue"] == {"queued": 0, "claimed": 0}
        assert stats["results"] == 2

    def test_gc_prunes_failed_and_orphans(self, service):
        key = service.submit(small_request(seed=5)).key
        record = service.status(key)
        record.request["strategy"]["kind"] = "no-such-strategy"
        service.store.write_record(record)
        service.run_local()
        # orphan ticket for a record that no longer exists
        orphan = service.store.queue_ticket("9" * 64)
        with open(orphan, "w") as handle:
            handle.write("x")
        removed = service.gc()
        assert removed["failed"] == 1
        assert removed["orphan_tickets"] == 1
        assert not service.store.has_record(key)

    def test_gc_ages_out_done_records(self, service):
        import time

        key = service.submit(small_request()).key
        service.run_local()
        removed = service.gc(done_older_than_s=3600.0)
        assert removed["done"] == 0  # still fresh
        removed = service.gc(
            done_older_than_s=0.0, now=time.time() + 10.0
        )
        assert removed["done"] == 1
        assert not service.store.has_response(key)
