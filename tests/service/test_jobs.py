"""Queue layer: claim/complete lifecycle, crash-safe requeue, workers.

The crash-safety tests drive everything through the public queue API —
claim a job the way a worker would, then simply never finish it.  No
store surgery: the recovery path must work on exactly the files a dead
worker leaves behind.
"""

import os

import pytest

from repro.api.specs import BudgetSpec, ExplorationRequest
from repro.errors import ConfigurationError, ServiceError
from repro.obs.telemetry import Telemetry
from repro.service import (
    ExplorationService,
    JobQueue,
    ResultStore,
    run_workers,
)


def small_request(**overrides):
    base = dict(
        kind="single",
        budget=BudgetSpec(iterations=60, warmup_iterations=10),
        seed=1,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


@pytest.fixture
def service(tmp_path):
    return ExplorationService(str(tmp_path / "store"))


def submit_one(service, **overrides):
    return service.submit(small_request(**overrides)).key


class TestLifecycle:
    def test_claim_execute_complete(self, service):
        key = submit_one(service)
        queue = service.queue
        assert queue.pending_keys() == [key]
        claimed = queue.claim("w0")
        assert claimed == key
        assert queue.pending_keys() == []
        assert queue.claimed_keys() == [key]
        assert service.status(key).status == "running"
        response = queue.execute(key)
        record = service.status(key)
        assert record.status == "done"
        assert record.attempts == 1
        assert record.telemetry is not None  # job internals absorbed
        assert queue.claimed_keys() == []
        assert service.store.response_text(key) == response.to_json()

    def test_enqueue_requires_a_record(self, service):
        with pytest.raises(ServiceError, match="no record row"):
            service.queue.enqueue("4" * 64)

    def test_claim_empty_queue(self, service):
        assert service.queue.claim("w0") is None

    def test_second_claim_loses(self, service):
        submit_one(service)
        assert service.queue.claim("w0") is not None
        assert service.queue.claim("w1") is None

    def test_execute_requires_a_claim(self, service):
        key = submit_one(service)
        with pytest.raises(ServiceError, match="claim it first"):
            service.queue.execute(key)

    def test_fifo_claim_order(self, service):
        import time

        first = submit_one(service, seed=1)
        time.sleep(0.02)  # distinct ticket mtimes
        second = submit_one(service, seed=2)
        assert service.queue.pending_keys() == [first, second]
        assert service.queue.claim("w0") == first

    def test_poisoned_job_fails_but_drain_continues(self, service):
        bad = submit_one(service, seed=5)
        good = submit_one(service, seed=6)
        # corrupt the stored request document (schema drift on disk)
        record = service.status(bad)
        record.request["strategy"]["kind"] = "no-such-strategy"
        service.store.write_record(record)
        executed = service.queue.drain(worker="w0")
        assert executed == 1
        assert service.status(good).status == "done"
        failed = service.status(bad)
        assert failed.status == "failed"
        assert "no-such-strategy" in failed.error
        assert service.queue.claimed_keys() == []  # claim released

    def test_drain_max_jobs(self, service):
        submit_one(service, seed=1)
        submit_one(service, seed=2)
        assert service.queue.drain(worker="w0", max_jobs=1) == 1
        assert len(service.queue.pending_keys()) == 1


class TestCrashSafety:
    def test_stale_running_job_is_requeued_and_completed(self, service):
        # A worker claims the job, then "dies" — nothing else touches
        # the store.  The next worker must requeue and finish it.
        key = submit_one(service)
        assert service.queue.claim("dead-worker") == key
        assert service.status(key).status == "running"

        fresh = JobQueue(ResultStore(service.store.root, create=False))
        requeued = fresh.requeue_stale(stale_after_s=0.0)
        assert requeued == [key]
        record = service.status(key)
        assert record.status == "pending"
        assert "dead-worker" in record.error
        assert fresh.pending_keys() == [key]

        assert fresh.drain(worker="w1") == 1
        record = service.status(key)
        assert record.status == "done"
        assert record.attempts == 2  # both claims are in the history
        statuses = [h["status"] for h in record.history]
        assert statuses == ["pending", "running", "pending",
                            "running", "done"]

    def test_fresh_claims_are_not_robbed(self, service):
        key = submit_one(service)
        service.queue.claim("live-worker")
        assert service.queue.requeue_stale(stale_after_s=3600.0) == []
        assert service.status(key).status == "running"

    def test_lost_ticket_is_recreated(self, service):
        # Crash window: the claim rename happened but the worker died
        # before stamping the record; later the claim ticket was lost
        # too.  requeue_stale must mint a fresh ticket.
        key = submit_one(service)
        service.queue.claim("dead-worker")
        os.unlink(service.store.claim_ticket(key))
        assert service.queue.requeue_stale(stale_after_s=0.0) == [key]
        assert service.queue.pending_keys() == [key]

    def test_pending_record_without_ticket_is_healed(self, service):
        key = submit_one(service)
        os.unlink(service.store.queue_ticket(key))
        assert service.queue.pending_keys() == []
        service.queue.requeue_stale(stale_after_s=0.0)
        assert service.queue.pending_keys() == [key]

    def test_requeue_counter(self, service):
        telemetry = Telemetry(label="t")
        key = submit_one(service)
        queue = JobQueue(service.store, telemetry=telemetry)
        queue.claim("dead-worker")
        queue.requeue_stale(stale_after_s=0.0)
        assert telemetry.counters["job_requeued"] == 1
        assert any(
            e["kind"] == "job_requeued" and e["key"] == key
            for e in telemetry.events
        )


class TestRunWorkers:
    def test_inline_worker_drains(self, service):
        keys = [submit_one(service, seed=s) for s in (1, 2)]
        telemetry = Telemetry(label="pool")
        executed = run_workers(
            service.store.root, workers=1, telemetry=telemetry
        )
        assert executed == 2
        assert all(service.status(k).status == "done" for k in keys)
        assert telemetry.counters["job_completed"] == 2

    def test_process_pool_drains_and_recovers(self, service):
        keys = [submit_one(service, seed=s) for s in (1, 2, 3)]
        abandoned = service.queue.claim("dead-worker")
        executed = run_workers(
            service.store.root, workers=2, stale_after_s=0.0
        )
        assert executed == 3
        assert all(service.status(k).status == "done" for k in keys)
        assert service.status(abandoned).attempts == 2

    def test_workers_must_be_positive(self, service):
        with pytest.raises(ConfigurationError, match="workers"):
            run_workers(service.store.root, workers=0)

    def test_missing_store_is_a_service_error(self, tmp_path):
        with pytest.raises(ServiceError, match="no exploration store"):
            run_workers(str(tmp_path / "absent"), workers=1)
