"""Tests for the paper's random initial solution generator."""

import random

import pytest

from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution


class TestFeasibility:
    def test_always_valid_and_acyclic(self, motion_app, epicure):
        evaluator = Evaluator(motion_app, epicure)
        for seed in range(20):
            rng = random.Random(seed)
            solution = random_initial_solution(motion_app, epicure, rng)
            solution.validate()
            ev = evaluator.evaluate(solution)
            assert ev.feasible, f"seed {seed} produced a cyclic realization"

    def test_small_app(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        for seed in range(20):
            solution = random_initial_solution(
                small_app, small_arch, random.Random(seed)
            )
            solution.validate()
            assert evaluator.evaluate(solution).feasible


class TestHwFraction:
    def test_zero_fraction_is_all_software(self, motion_app, epicure):
        solution = random_initial_solution(
            motion_app, epicure, random.Random(1), hw_fraction=0.0
        )
        assert solution.hardware_tasks() == []

    def test_full_fraction_offloads_all_capable(self, motion_app, epicure):
        solution = random_initial_solution(
            motion_app, epicure, random.Random(1), hw_fraction=1.0
        )
        capable = {t.index for t in motion_app.hardware_capable_tasks()}
        assert set(solution.hardware_tasks()) == capable

    def test_software_only_tasks_never_offloaded(self, motion_app, epicure):
        solution = random_initial_solution(
            motion_app, epicure, random.Random(2), hw_fraction=1.0
        )
        for t in solution.hardware_tasks():
            assert motion_app.task(t).hardware_capable


class TestContextPacking:
    def test_contexts_respect_capacity(self, motion_app):
        from repro.arch.architecture import epicure_architecture

        arch = epicure_architecture(n_clbs=150)  # tight device
        for seed in range(10):
            solution = random_initial_solution(
                motion_app, arch, random.Random(seed), hw_fraction=1.0
            )
            solution.validate()  # validates capacity per context

    def test_determinism_per_seed(self, motion_app, epicure):
        a = random_initial_solution(motion_app, epicure, random.Random(9))
        b = random_initial_solution(motion_app, epicure, random.Random(9))
        assert a.software_tasks() == b.software_tasks()
        assert a.hardware_tasks() == b.hardware_tasks()
