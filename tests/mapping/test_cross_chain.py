"""Cross-chain evaluator and engine-option plumbing.

Covers the pieces the population annealer stands on: compiled-instance
forking, the ``kernel_batch_min_work`` engine option (constructor,
spec-dict form, rejection cases, fork propagation) and the
batched-vs-fallback parity of ``CrossChainEvaluator.evaluate_moves``.
"""

import copy
import random

import pytest

from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.mapping.compiled import compile_instance
from repro.mapping.engine import (
    ArrayEngine,
    CrossChainEvaluator,
    make_engine,
)
from repro.mapping.cost import MakespanCost
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import MoveGenerator


def _bus(architecture):
    return architecture.bus


class TestCompiledFork:
    def test_fork_shares_immutable_tables(self, small_app, small_arch):
        compiled = compile_instance(small_app, _bus(small_arch))
        fork = compiled.fork()
        assert fork.dep_src is compiled.dep_src
        assert fork.sw_ms is compiled.sw_ms
        assert fork.pred_ids is compiled.pred_ids
        assert fork._np_cache is compiled._np_cache

    def test_fork_isolates_virtual_node_growth(self, small_app, small_arch):
        compiled = compile_instance(small_app, _bus(small_arch))
        fork = compiled.fork()
        assert len(fork.interner) == len(compiled.interner)
        fork.interner.intern(("virtual", 0))
        fork.pred_comms.append([])
        assert len(fork.interner) == len(compiled.interner) + 1
        assert len(fork.pred_comms) == len(compiled.pred_comms) + 1


class TestKernelBatchMinWorkOption:
    def test_constructor_option_wins_over_class_default(
        self, small_app, small_arch
    ):
        engine = ArrayEngine(
            small_app, small_arch, kernel_batch_min_work=123
        )
        assert engine.kernel_batch_min_work == 123
        assert ArrayEngine.KERNEL_BATCH_MIN_WORK != 123

    def test_default_falls_back_to_class_attribute(
        self, small_app, small_arch
    ):
        engine = ArrayEngine(small_app, small_arch)
        assert (
            engine.kernel_batch_min_work == ArrayEngine.KERNEL_BATCH_MIN_WORK
        )

    def test_spec_dict_builds_configured_engine(self, small_app, small_arch):
        engine = make_engine(
            {"kind": "array", "kernel_batch_min_work": 77},
            small_app, small_arch,
        )
        assert isinstance(engine, ArrayEngine)
        assert engine.kernel_batch_min_work == 77

    def test_unknown_engine_option_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="turbo_mode"):
            make_engine(
                {"kind": "array", "turbo_mode": True}, small_app, small_arch
            )

    def test_option_on_scalar_engine_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="array"):
            make_engine(
                {"kind": "incremental", "kernel_batch_min_work": 5},
                small_app, small_arch,
            )

    def test_forked_chain_engines_inherit_the_option(
        self, small_app, small_arch
    ):
        evaluator = CrossChainEvaluator(
            small_app, small_arch, 3,
            engine={"kind": "array", "kernel_batch_min_work": 55},
        )
        assert [e.kernel_batch_min_work for e in evaluator.engines] == (
            [55, 55, 55]
        )


class TestCrossChainEvaluator:
    def _population(self, app, arch, engine, chains=3, seed=41):
        evaluator = CrossChainEvaluator(app, arch, chains, engine=engine)
        solutions = [
            random_initial_solution(app, arch, random.Random(seed + c))
            for c in range(chains)
        ]
        for c in range(chains):
            evaluator.evaluate(c, solutions[c])
        return evaluator, solutions

    def _moves(self, app, solutions, seed=7):
        generator = MoveGenerator(app, p_impl=0.2)
        rng = random.Random(seed)
        moves = []
        for solution in solutions:
            try:
                moves.append(generator.propose(solution, rng))
            except Exception:
                moves.append(None)
        return moves

    def test_rejects_wrong_arity(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        with pytest.raises(ConfigurationError, match="expected 3"):
            evaluator.evaluate_moves(solutions[:2], [None, None])

    def test_batched_path_matches_scalar_fallback(
        self, small_app, small_arch
    ):
        cost = MakespanCost()
        batched_ev, batched_sols = self._population(
            small_app, small_arch, "array"
        )
        scalar_ev, scalar_sols = self._population(
            small_app, small_arch, "full"
        )
        for round_seed in range(5):
            moves_a = self._moves(small_app, batched_sols, seed=round_seed)
            moves_b = self._moves(small_app, scalar_sols, seed=round_seed)
            got = batched_ev.evaluate_moves(batched_sols, moves_a, cost)
            want = scalar_ev.evaluate_moves(scalar_sols, moves_b, cost)
            assert [
                None if r is None else r[1] for r in got
            ] == [
                None if r is None else r[1] for r in want
            ]

    def test_solutions_left_untouched(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        before = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(3)
        ]
        moves = self._moves(small_app, solutions)
        evaluator.evaluate_moves(solutions, moves, MakespanCost())
        after = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(3)
        ]
        assert before == after

    def test_none_moves_yield_none_results(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        results = evaluator.evaluate_moves(
            solutions, [None] * 3, MakespanCost()
        )
        assert results == [None, None, None]

    def test_evaluations_accumulate_across_chains(
        self, small_app, small_arch
    ):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        before = evaluator.evaluations
        moves = self._moves(small_app, solutions)
        results = evaluator.evaluate_moves(solutions, moves, MakespanCost())
        scored = sum(1 for r in results if r is not None)
        assert evaluator.evaluations == before + scored

    def test_rejects_zero_chains(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="chains"):
            CrossChainEvaluator(small_app, small_arch, 0)


class TestDispatchResolution:
    """The depth-aware dispatcher: explicit modes win, ``"auto"``
    consults the compile pass's mean level width, non-array engines
    always take the scalar path."""

    def test_explicit_modes_win(self, small_app, small_arch):
        for mode in ("kernel", "scalar"):
            evaluator = CrossChainEvaluator(
                small_app, small_arch, 2,
                engine={"kind": "array", "dispatch": mode},
            )
            assert evaluator.dispatch == mode

    def test_auto_routes_deep_graphs_to_scalar(self, small_app, small_arch):
        # The diamond app is deep/narrow (mean level width well below
        # the kernel threshold), so "auto" resolves to the persistent
        # scalar path.
        evaluator = CrossChainEvaluator(small_app, small_arch, 2)
        compiled = evaluator.engines[0].compiled
        assert compiled.mean_level_width < ArrayEngine.KERNEL_MIN_MEAN_WIDTH
        assert evaluator.dispatch == "scalar"

    def test_auto_routes_wide_graphs_to_kernel(
        self, small_app, small_arch, monkeypatch
    ):
        monkeypatch.setattr(ArrayEngine, "KERNEL_MIN_MEAN_WIDTH", 0.0)
        evaluator = CrossChainEvaluator(small_app, small_arch, 2)
        assert evaluator.dispatch == "kernel"

    def test_non_array_engines_are_scalar(self, small_app, small_arch):
        for engine in ("full", "incremental"):
            evaluator = CrossChainEvaluator(
                small_app, small_arch, 2, engine=engine
            )
            assert evaluator.dispatch == "scalar"

    def test_invalid_mode_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="dispatch"):
            make_engine(
                {"kind": "array", "dispatch": "warp"}, small_app, small_arch
            )


class TestPersistentTransactions:
    """The commit-on-accept path (``propose_moves`` + ``resolve``) is
    bit-identical to the pure PR 6 flow (``evaluate_moves`` + undo +
    re-apply on accept), across every engine, both resolve branches,
    and every move kind (m1/m2/m_impl/m_offload plus the m3/m4
    architecture moves)."""

    CHAINS = 3
    ROUNDS = 8

    def _population(self, app, arch, engine, seed=41):
        evaluator = CrossChainEvaluator(
            app, arch, self.CHAINS, engine=engine
        )
        solutions = [
            random_initial_solution(app, arch, random.Random(seed + c))
            for c in range(self.CHAINS)
        ]
        for c in range(self.CHAINS):
            evaluator.evaluate(c, solutions[c])
        return evaluator, solutions

    @staticmethod
    def _catalog():
        return [
            lambda name: Processor(name, speed_factor=1.2, monetary_cost=1.0),
            lambda name: ReconfigurableCircuit(
                name, n_clbs=400, monetary_cost=2.0
            ),
        ]

    def _moves(self, app, solutions, seed, p_zero=0.0):
        generator = MoveGenerator(
            app, p_zero=p_zero, p_impl=0.2,
            catalog=self._catalog() if p_zero else None,
        )
        rng = random.Random(seed)
        moves = []
        for solution in solutions:
            try:
                moves.append(generator.propose(solution, rng))
            except Exception:
                moves.append(None)
        return moves

    def _run_walk(self, app, arch, engine, persistent, p_zero=0.0):
        """Drive ROUNDS rounds; ``persistent`` picks the transaction
        path, else the pure scoring + re-apply reference.  The accept
        rule is deterministic in (round, chain) so both walks take the
        same branches.  The architecture is copied per walk: the m3/m4
        moves mutate it (resource set, fresh-name counter), and the two
        walks must start from identical state."""
        arch = copy.deepcopy(arch)
        evaluator, solutions = self._population(app, arch, engine)
        cost = MakespanCost()
        costs = []
        for round_no in range(self.ROUNDS):
            moves = self._moves(app, solutions, seed=round_no, p_zero=p_zero)
            if persistent:
                outcomes = evaluator.propose_moves(solutions, moves, cost)
            else:
                outcomes = evaluator.evaluate_moves(solutions, moves, cost)
            for c in range(self.CHAINS):
                if outcomes[c] is None:
                    continue
                accept = (round_no + c) % 2 == 0
                if persistent:
                    evaluator.resolve(c, solutions[c], moves[c], accept)
                elif accept:
                    moves[c].apply(solutions[c])
            costs.append(
                [None if r is None else r[1] for r in outcomes]
            )
        finals = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(self.CHAINS)
        ]
        return costs, finals

    @pytest.mark.parametrize("engine", ["full", "incremental", "array"])
    def test_commit_path_matches_pure_replay(
        self, engine, small_app, small_arch
    ):
        persistent = self._run_walk(
            small_app, small_arch, engine, persistent=True
        )
        replay = self._run_walk(
            small_app, small_arch, engine, persistent=False
        )
        assert persistent == replay

    def _single_engine_walk(self, app, arch, engine, persistent,
                            p_zero, rounds=20, seed=23):
        """One engine, one solution: drive ``propose_move`` + accept/
        reject (persistent) or the classic apply → evaluate → undo
        reference over the same seeded move stream.  ``p_zero > 0``
        draws the m3/m4 resource moves, which change the resource set
        mid-walk (the hardest case for the persistent mirrors: interner
        growth plus resource-name churn)."""
        arch = copy.deepcopy(arch)
        eng = make_engine(engine, app, arch)
        solution = random_initial_solution(app, arch, random.Random(seed))
        eng.evaluate(solution)
        generator = MoveGenerator(
            app, p_zero=p_zero, p_impl=0.2,
            catalog=self._catalog() if p_zero else None,
        )
        rng = random.Random(seed + 1)
        cost = MakespanCost()
        costs = []
        for round_no in range(rounds):
            try:
                move = generator.propose(solution, rng)
            except Exception:
                costs.append(None)
                continue
            accept = round_no % 2 == 0
            if persistent:
                outcome = eng.propose_move(solution, move, cost)
                if outcome is None:
                    costs.append(None)
                    continue
                costs.append(outcome[1])
                if accept:
                    eng.accept_move(solution, move)
                else:
                    eng.reject_move(solution, move)
            else:
                try:
                    move.apply(solution)
                except Exception:
                    costs.append(None)
                    continue
                evaluation = eng.evaluate(solution)
                costs.append(cost(solution, evaluation))
                if not accept:
                    move.undo(solution)
        return costs, eng.evaluate(solution).makespan_ms

    @pytest.mark.parametrize("engine", ["full", "incremental", "array"])
    def test_architecture_moves_replay_identically(
        self, engine, small_app, small_arch
    ):
        # m3/m4 change the architecture itself, so they are exercised
        # on a single permanently-bound engine (the population draws
        # them with p_zero=0 across chains: a shared-architecture edit
        # would desync the sibling chains' solutions).
        persistent = self._single_engine_walk(
            small_app, small_arch, engine, persistent=True, p_zero=0.4
        )
        replay = self._single_engine_walk(
            small_app, small_arch, engine, persistent=False, p_zero=0.4
        )
        assert persistent == replay

    @pytest.mark.parametrize("engine", ["full", "incremental", "array"])
    def test_post_walk_state_matches_fresh_engine(
        self, engine, small_app, small_arch
    ):
        evaluator, solutions = self._population(
            small_app, small_arch, engine
        )
        cost = MakespanCost()
        for round_no in range(self.ROUNDS):
            moves = self._moves(small_app, solutions, seed=round_no)
            outcomes = evaluator.propose_moves(solutions, moves, cost)
            for c in range(self.CHAINS):
                if outcomes[c] is None:
                    continue
                evaluator.resolve(
                    c, solutions[c], moves[c], (round_no + c) % 2 == 0
                )
        for c in range(self.CHAINS):
            fresh = make_engine(
                engine, small_app, small_arch
            ).evaluate(solutions[c]).makespan_ms
            assert evaluator.evaluate(c, solutions[c]).makespan_ms == fresh

    def test_kernel_dispatch_reapplies_on_accept(
        self, small_app, small_arch, monkeypatch
    ):
        # Forced kernel dispatch takes the pure evaluate_moves path;
        # resolve must then apply accepted moves itself.
        evaluator, solutions = self._population(
            small_app, small_arch, {"kind": "array", "dispatch": "kernel"}
        )
        assert evaluator.dispatch == "kernel"
        cost = MakespanCost()
        moves = self._moves(small_app, solutions, seed=3)
        before = [s.num_contexts() for s in solutions]
        outcomes = evaluator.propose_moves(solutions, moves, cost)
        assert not evaluator._pending_persistent
        for c in range(self.CHAINS):
            if outcomes[c] is None:
                continue
            evaluator.resolve(c, solutions[c], moves[c], True)
        want = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(self.CHAINS)
        ]
        fresh = [
            make_engine("full", small_app, small_arch)
            .evaluate(solutions[c]).makespan_ms
            for c in range(self.CHAINS)
        ]
        assert want == fresh

    def test_propose_none_moves_open_no_transactions(
        self, small_app, small_arch
    ):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        results = evaluator.propose_moves(
            solutions, [None] * self.CHAINS, MakespanCost()
        )
        assert results == [None] * self.CHAINS
