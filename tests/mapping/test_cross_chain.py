"""Cross-chain evaluator and engine-option plumbing.

Covers the pieces the population annealer stands on: compiled-instance
forking, the ``kernel_batch_min_work`` engine option (constructor,
spec-dict form, rejection cases, fork propagation) and the
batched-vs-fallback parity of ``CrossChainEvaluator.evaluate_moves``.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.mapping.compiled import compile_instance
from repro.mapping.engine import (
    ArrayEngine,
    CrossChainEvaluator,
    make_engine,
)
from repro.mapping.cost import MakespanCost
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import MoveGenerator


def _bus(architecture):
    return architecture.bus


class TestCompiledFork:
    def test_fork_shares_immutable_tables(self, small_app, small_arch):
        compiled = compile_instance(small_app, _bus(small_arch))
        fork = compiled.fork()
        assert fork.dep_src is compiled.dep_src
        assert fork.sw_ms is compiled.sw_ms
        assert fork.pred_ids is compiled.pred_ids
        assert fork._np_cache is compiled._np_cache

    def test_fork_isolates_virtual_node_growth(self, small_app, small_arch):
        compiled = compile_instance(small_app, _bus(small_arch))
        fork = compiled.fork()
        assert len(fork.interner) == len(compiled.interner)
        fork.interner.intern(("virtual", 0))
        fork.pred_comms.append([])
        assert len(fork.interner) == len(compiled.interner) + 1
        assert len(fork.pred_comms) == len(compiled.pred_comms) + 1


class TestKernelBatchMinWorkOption:
    def test_constructor_option_wins_over_class_default(
        self, small_app, small_arch
    ):
        engine = ArrayEngine(
            small_app, small_arch, kernel_batch_min_work=123
        )
        assert engine.kernel_batch_min_work == 123
        assert ArrayEngine.KERNEL_BATCH_MIN_WORK != 123

    def test_default_falls_back_to_class_attribute(
        self, small_app, small_arch
    ):
        engine = ArrayEngine(small_app, small_arch)
        assert (
            engine.kernel_batch_min_work == ArrayEngine.KERNEL_BATCH_MIN_WORK
        )

    def test_spec_dict_builds_configured_engine(self, small_app, small_arch):
        engine = make_engine(
            {"kind": "array", "kernel_batch_min_work": 77},
            small_app, small_arch,
        )
        assert isinstance(engine, ArrayEngine)
        assert engine.kernel_batch_min_work == 77

    def test_unknown_engine_option_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="turbo_mode"):
            make_engine(
                {"kind": "array", "turbo_mode": True}, small_app, small_arch
            )

    def test_option_on_scalar_engine_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="array"):
            make_engine(
                {"kind": "incremental", "kernel_batch_min_work": 5},
                small_app, small_arch,
            )

    def test_forked_chain_engines_inherit_the_option(
        self, small_app, small_arch
    ):
        evaluator = CrossChainEvaluator(
            small_app, small_arch, 3,
            engine={"kind": "array", "kernel_batch_min_work": 55},
        )
        assert [e.kernel_batch_min_work for e in evaluator.engines] == (
            [55, 55, 55]
        )


class TestCrossChainEvaluator:
    def _population(self, app, arch, engine, chains=3, seed=41):
        evaluator = CrossChainEvaluator(app, arch, chains, engine=engine)
        solutions = [
            random_initial_solution(app, arch, random.Random(seed + c))
            for c in range(chains)
        ]
        for c in range(chains):
            evaluator.evaluate(c, solutions[c])
        return evaluator, solutions

    def _moves(self, app, solutions, seed=7):
        generator = MoveGenerator(app, p_impl=0.2)
        rng = random.Random(seed)
        moves = []
        for solution in solutions:
            try:
                moves.append(generator.propose(solution, rng))
            except Exception:
                moves.append(None)
        return moves

    def test_rejects_wrong_arity(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        with pytest.raises(ConfigurationError, match="expected 3"):
            evaluator.evaluate_moves(solutions[:2], [None, None])

    def test_batched_path_matches_scalar_fallback(
        self, small_app, small_arch
    ):
        cost = MakespanCost()
        batched_ev, batched_sols = self._population(
            small_app, small_arch, "array"
        )
        scalar_ev, scalar_sols = self._population(
            small_app, small_arch, "full"
        )
        for round_seed in range(5):
            moves_a = self._moves(small_app, batched_sols, seed=round_seed)
            moves_b = self._moves(small_app, scalar_sols, seed=round_seed)
            got = batched_ev.evaluate_moves(batched_sols, moves_a, cost)
            want = scalar_ev.evaluate_moves(scalar_sols, moves_b, cost)
            assert [
                None if r is None else r[1] for r in got
            ] == [
                None if r is None else r[1] for r in want
            ]

    def test_solutions_left_untouched(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        before = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(3)
        ]
        moves = self._moves(small_app, solutions)
        evaluator.evaluate_moves(solutions, moves, MakespanCost())
        after = [
            evaluator.evaluate(c, solutions[c]).makespan_ms
            for c in range(3)
        ]
        assert before == after

    def test_none_moves_yield_none_results(self, small_app, small_arch):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        results = evaluator.evaluate_moves(
            solutions, [None] * 3, MakespanCost()
        )
        assert results == [None, None, None]

    def test_evaluations_accumulate_across_chains(
        self, small_app, small_arch
    ):
        evaluator, solutions = self._population(
            small_app, small_arch, "array"
        )
        before = evaluator.evaluations
        moves = self._moves(small_app, solutions)
        results = evaluator.evaluate_moves(solutions, moves, MakespanCost())
        scored = sum(1 for r in results if r is not None)
        assert evaluator.evaluations == before + scored

    def test_rejects_zero_chains(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="chains"):
            CrossChainEvaluator(small_app, small_arch, 0)
