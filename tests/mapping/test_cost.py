"""Tests for cost functions."""

import pytest

from repro.errors import ConfigurationError
from repro.mapping.cost import MakespanCost, SystemCost
from repro.mapping.evaluator import Evaluator


class TestMakespanCost:
    def test_is_makespan(self, small_app, small_arch, small_solution):
        ev = Evaluator(small_app, small_arch).evaluate(small_solution)
        assert MakespanCost()(small_solution, ev) == ev.makespan_ms


class TestSystemCost:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemCost(deadline_ms=0)
        with pytest.raises(ConfigurationError):
            SystemCost(deadline_ms=10, penalty_per_ms=0)

    def test_no_penalty_when_meeting_deadline(
        self, small_app, small_arch, small_solution
    ):
        ev = Evaluator(small_app, small_arch).evaluate(small_solution)
        cost = SystemCost(deadline_ms=1000.0)(small_solution, ev)
        assert cost == pytest.approx(small_arch.total_monetary_cost())

    def test_penalty_scales_with_lateness(
        self, small_app, small_arch, small_solution
    ):
        ev = Evaluator(small_app, small_arch).evaluate(small_solution)
        base = small_arch.total_monetary_cost()
        cost = SystemCost(deadline_ms=ev.makespan_ms - 2.0, penalty_per_ms=10.0)(
            small_solution, ev
        )
        assert cost == pytest.approx(base + 20.0)
