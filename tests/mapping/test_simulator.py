"""Simulator-vs-evaluator cross-validation.

The event-driven simulator and the longest-path evaluator are two
independent timing models of the same realization; they must agree on
every feasible solution.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CycleError
from repro.mapping.evaluator import Evaluator
from repro.mapping.simulator import ExecutionSimulator, simulate
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.moves import MoveGenerator
from repro.errors import InfeasibleMoveError


def cross_check(app, arch, solution):
    evaluator = Evaluator(app, arch)
    graph = evaluator.realize(solution)
    analytical = graph.makespan_ms()
    simulated = simulate(solution, graph)
    assert simulated.makespan_ms == pytest.approx(analytical)
    return simulated


class TestAgreement:
    def test_all_software(self, small_app, small_arch, small_solution):
        result = cross_check(small_app, small_arch, small_solution)
        assert result.makespan_ms == pytest.approx(21.0)

    def test_mixed_mapping(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        s.spawn_context(3, "fpga")
        result = cross_check(small_app, small_arch, s)
        assert result.check_exclusive("cpu")
        assert result.check_exclusive("shared_bus")

    def test_motion_random_solutions(self, motion_app, epicure):
        for seed in range(10):
            s = random_initial_solution(
                motion_app, epicure, random.Random(seed)
            )
            cross_check(motion_app, epicure, s)

    def test_agreement_along_an_annealing_walk(self, motion_app, epicure):
        """Every feasible state visited by a random move walk agrees."""
        rng = random.Random(11)
        solution = random_initial_solution(motion_app, epicure, rng)
        generator = MoveGenerator(motion_app, p_impl=0.2, p_offload=0.2)
        evaluator = Evaluator(motion_app, epicure)
        checked = 0
        for _ in range(120):
            try:
                move = generator.propose(solution, rng)
                move.apply(solution)
            except InfeasibleMoveError:
                continue
            graph = evaluator.realize(solution)
            try:
                analytical = graph.makespan_ms()
            except CycleError:
                move.undo(solution)
                continue
            simulated = simulate(solution, graph)
            assert simulated.makespan_ms == pytest.approx(analytical)
            checked += 1
        assert checked > 30  # the walk must have exercised real states


class TestEventLog:
    def test_events_cover_all_activities(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        s.spawn_context(3, "fpga")
        evaluator = Evaluator(small_app, small_arch)
        graph = evaluator.realize(s)
        result = simulate(s, graph)
        labels = {e.label for e in result.events}
        for task in small_app.tasks():
            assert task.name in labels
        assert "initial_config" in labels

    def test_cycle_raises(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.assign_to_processor(1, "cpu")  # violates 0 -> 1 order
        s.assign_to_processor(0, "cpu")
        for t in (2, 3, 4, 5):
            s.assign_to_processor(t, "cpu")
        evaluator = Evaluator(small_app, small_arch)
        graph = evaluator.realize(s)
        with pytest.raises(CycleError):
            ExecutionSimulator(s, graph).run()


@given(seed=st.integers(0, 100_000))
@settings(max_examples=25, deadline=None)
def test_property_simulator_equals_longest_path(seed):
    """Random solutions of the motion benchmark: both models agree."""
    from repro.arch.architecture import epicure_architecture
    from repro.model.motion import motion_detection_application

    app = motion_detection_application()
    arch = epicure_architecture(n_clbs=1000)
    solution = random_initial_solution(app, arch, random.Random(seed))
    evaluator = Evaluator(app, arch)
    graph = evaluator.realize(solution)
    analytical = graph.makespan_ms()
    simulated = simulate(solution, graph)
    assert abs(simulated.makespan_ms - analytical) < 1e-9
