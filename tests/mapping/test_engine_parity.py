"""Property test: every engine is bit-identical to the full rebuild
reference.

Replays hundreds of random accepted/rejected move sequences on random
applications (plus the motion-detection benchmark) and asserts that
``FullRebuildEngine``, ``IncrementalEngine`` and ``ArrayEngine`` agree
pairwise on makespan, feasibility and communication totals at every
step — including right after rejected moves are undone, which is
exactly the state-reversal pattern the delta-patching engines must
survive.  The array engine's batched path is covered separately by
``test_array_engine_batch_matches_scalar``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.engine import (
    ENGINES,
    ArrayEngine,
    FullRebuildEngine,
    IncrementalEngine,
    make_engine,
)
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.generator import GeneratorConfig, random_application
from repro.model.motion import motion_detection_application
from repro.sa.moves import MoveGenerator

#: Every unordered engine pair (the replay asserts pairwise identity,
#: so covering the pairs covers the whole equivalence class).
ENGINE_PAIRS = [
    ("full", "incremental"),
    ("full", "array"),
    ("incremental", "array"),
]


def _assert_same(full_ev, inc_ev, context):
    assert full_ev.feasible == inc_ev.feasible, context
    if math.isfinite(full_ev.makespan_ms):
        assert full_ev.makespan_ms == inc_ev.makespan_ms, context
    else:
        assert not math.isfinite(inc_ev.makespan_ms), context
    assert full_ev.comm_ms == inc_ev.comm_ms, context
    assert full_ev == inc_ev, context


def _replay(
    app,
    arch_factory,
    seed,
    steps,
    p_zero=0.0,
    bus_policy="ordered",
    engines=("full", "incremental"),
):
    """Replay one random move sequence through an engine pair; returns
    the number of evaluated states."""
    arch = arch_factory()
    catalog = None
    if p_zero > 0.0:
        catalog = [
            lambda name: Processor(name, speed_factor=1.5, monetary_cost=1.0),
            lambda name: ReconfigurableCircuit(name, n_clbs=400, monetary_cost=2.0),
        ]
        arch.catalog = list(catalog)
    left = Evaluator(app, arch, bus_policy, engine=engines[0])
    right = Evaluator(app, arch, bus_policy, engine=engines[1])
    rng = random.Random(seed)
    solution = random_initial_solution(app, arch, rng)
    gen = MoveGenerator(app, p_zero=p_zero, catalog=catalog)

    _assert_same(left.evaluate(solution), right.evaluate(solution), "initial")
    evaluated = 1
    attempts = 0
    while evaluated < steps and attempts < steps * 20:
        attempts += 1
        try:
            move = gen.propose(solution, rng)
            move.apply(solution)
        except InfeasibleMoveError:
            continue
        context = f"seed={seed} step={evaluated} move={move.name} {engines}"
        _assert_same(left.evaluate(solution), right.evaluate(solution), context)
        evaluated += 1
        # Metropolis-style coin: reject half the moves and make sure the
        # engines agree again after the rollback.
        if rng.random() < 0.5:
            move.undo(solution)
            if rng.random() < 0.3:
                _assert_same(
                    left.evaluate(solution),
                    right.evaluate(solution),
                    context + " (after undo)",
                )
                evaluated += 1
    return evaluated


@pytest.mark.parametrize("engines", ENGINE_PAIRS, ids=lambda p: "-vs-".join(p))
def test_engine_parity_on_random_move_sequences(engines):
    """>= 500 random accepted/rejected moves across varied instances,
    per engine pair."""
    total = 0
    cases = [
        # (tasks, topology, seed, arch factory, p_zero, bus policy)
        (10, "tgff", 1, lambda: epicure_architecture(400), 0.0, "ordered"),
        (18, "tgff", 2, lambda: epicure_architecture(1200), 0.0, "ordered"),
        (18, "layered", 3, lambda: epicure_architecture(800), 0.0, "edge"),
        (26, "tgff", 4, lambda: _dual_resource_arch(), 0.0, "ordered"),
        (14, "layered", 5, lambda: epicure_architecture(600), 0.12, "ordered"),
        (22, "tgff", 6, lambda: _asic_arch(), 0.0, "ordered"),
    ]
    for num_tasks, topology, seed, arch_factory, p_zero, bus in cases:
        app = random_application(
            GeneratorConfig(num_tasks=num_tasks, topology=topology), seed=seed
        )
        total += _replay(
            app, arch_factory, seed * 101, 80, p_zero, bus, engines
        )
    assert total >= 480  # random-instance share of the >=500 target


@pytest.mark.parametrize("engines", ENGINE_PAIRS, ids=lambda p: "-vs-".join(p))
def test_engine_parity_on_motion_benchmark(engines):
    app = motion_detection_application()
    total = _replay(
        app, lambda: epicure_architecture(2000), seed=99, steps=120,
        engines=engines,
    )
    assert total >= 100


def test_array_engine_batch_matches_scalar():
    """The batched kernel path scores candidates bit-identically to the
    scalar engines, including infeasible application slots."""
    app = motion_detection_application()
    arch = epicure_architecture(2000)
    full = Evaluator(app, arch, engine="full")
    array = Evaluator(app, arch, engine="array")
    array.engine.KERNEL_BATCH_MIN_WORK = 0  # force the kernel path
    rng = random.Random(17)
    solution = random_initial_solution(app, arch, rng)
    gen = MoveGenerator(app)
    compared = 0
    for _round in range(25):
        moves = []
        while len(moves) < 6:
            try:
                moves.append(gen.propose(solution, rng))
            except InfeasibleMoveError:
                continue
        batch = array.evaluate_batch(solution, moves)
        reference = full.engine.evaluate_batch(solution, moves)
        for k, (got, want) in enumerate(zip(batch, reference)):
            assert (got is None) == (want is None), (k, got, want)
            if got is None:
                continue
            _assert_same(want[0], got[0], f"round={_round} slot={k}")
            compared += 1
        try:
            moves[0].apply(solution)  # advance the walk
        except InfeasibleMoveError:
            pass
    assert compared >= 100


def _dual_resource_arch() -> Architecture:
    arch = Architecture("dual", bus=Bus(rate_kbytes_per_ms=25.0, latency_ms=0.05))
    arch.add_resource(Processor("cpu0", speed_factor=1.0))
    arch.add_resource(Processor("cpu1", speed_factor=1.7))
    arch.add_resource(ReconfigurableCircuit("fpga_a", n_clbs=700))
    arch.add_resource(
        ReconfigurableCircuit(
            "fpga_b", n_clbs=300, partial_reconfiguration=False
        )
    )
    arch.validate()
    return arch


def _asic_arch() -> Architecture:
    arch = Architecture("with_asic", bus=Bus(rate_kbytes_per_ms=40.0))
    arch.add_resource(Processor("cpu"))
    arch.add_resource(ReconfigurableCircuit("fpga", n_clbs=900))
    arch.add_resource(Asic("asic", monetary_cost=8.0))
    arch.validate()
    return arch


def test_engine_parity_strict_raises_on_cycles(small_app, small_arch):
    """Cyclic realizations: both engines report infeasible, and strict
    mode re-raises from both."""
    from repro.errors import CycleError
    from repro.mapping.solution import Solution

    solution = Solution(small_app, small_arch)
    # Reverse-precedence software order 5..0 creates a cyclic realization
    # only when combined with a hardware context in between; simplest
    # guaranteed cycle: put 3 (middle) in hardware, everything else on
    # the cpu in reverse order, so sequentialization opposes precedence.
    order = [5, 4, 3, 2, 1, 0]
    for t in order:
        if t == 3:
            continue
        solution.assign_to_processor(t, "cpu")
    solution.spawn_context(3, "fpga")
    evaluators = [
        Evaluator(small_app, small_arch, engine=name) for name in ENGINES
    ]
    for evaluator in evaluators:
        ev = evaluator.evaluate(solution)
        assert not ev.feasible
        assert math.isinf(ev.makespan_ms)
        assert math.isinf(evaluator.makespan_ms(solution))
        with pytest.raises(CycleError):
            evaluator.evaluate(solution, strict=True)


def test_make_engine_validates_names(small_app, small_arch):
    assert ENGINES == ("full", "incremental", "array")
    assert isinstance(
        make_engine("full", small_app, small_arch), FullRebuildEngine
    )
    assert isinstance(
        make_engine("incremental", small_app, small_arch), IncrementalEngine
    )
    assert isinstance(
        make_engine("array", small_app, small_arch), ArrayEngine
    )
    with pytest.raises(ConfigurationError):
        make_engine("warp", small_app, small_arch)


def test_evaluator_engine_knob(small_app, small_arch, small_solution):
    full = Evaluator(small_app, small_arch, engine="full")
    inc = Evaluator(small_app, small_arch, engine="incremental")
    assert full.engine_name == "full"
    assert inc.engine_name == "incremental"
    assert full.evaluate(small_solution) == inc.evaluate(small_solution)
    assert full.evaluations == inc.evaluations == 1
    # Passing a prebuilt engine instance is accepted too.
    engine = IncrementalEngine(small_app, small_arch)
    wrapped = Evaluator(small_app, small_arch, engine=engine)
    assert wrapped.engine is engine