"""Evaluator tests with hand-computed makespans.

The small_app/small_arch fixture numbers (see conftest): software times
2, 6, 4, 5, 3, 1 ms; hw impl0 of tasks 1/2/3 = (100 CLB, 1.0 ms),
(80, 0.8), (120, 1.2); bus 10 KB/ms; t_R = 0.01 ms/CLB.
"""

import math

import pytest

from repro.errors import CycleError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution


def all_software(small_app, small_arch):
    s = Solution(small_app, small_arch)
    for t in small_app.topological_order():
        s.assign_to_processor(t, "cpu")
    return s


class TestAllSoftware:
    def test_makespan_is_serialized_sum(self, small_app, small_arch):
        evaluator = Evaluator(small_app, small_arch)
        ev = evaluator.evaluate(all_software(small_app, small_arch))
        assert ev.makespan_ms == pytest.approx(21.0)
        assert ev.feasible
        assert ev.num_contexts == 0
        assert ev.comm_ms == 0.0
        assert ev.hw_tasks == 0 and ev.sw_tasks == 6
        assert ev.reconfig_ms == 0.0


class TestSingleHardwareTask:
    def test_hand_computed_makespan(self, small_app, small_arch):
        """Task 1 on the FPGA: see module docstring for the timeline.

        cpu order [0,2,3,4,5]; comm 0->1 (1.0 ms) and 1->3 (0.5 ms);
        config 1.0 ms.  Expected makespan 15.0 ms.
        """
        s = Solution(small_app, small_arch)
        for t in (0, 2, 3, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        evaluator = Evaluator(small_app, small_arch)
        ev = evaluator.evaluate(s)
        assert ev.makespan_ms == pytest.approx(15.0)
        assert ev.initial_reconfig_ms == pytest.approx(1.0)
        assert ev.dynamic_reconfig_ms == 0.0
        assert ev.comm_ms == pytest.approx(1.5)
        assert ev.num_contexts == 1
        assert ev.clbs_used == 100


class TestFullHardwareContext:
    def make(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        s.assign_to_context(3, "fpga", 0)  # 300 CLBs exactly
        return s

    def test_ordered_bus_serializes_transfers(self, small_app, small_arch):
        """comm(0,1) and comm(0,2) are both ready at t=2 but must share
        the bus; hand-computed makespan 10.2 ms (module docstring)."""
        evaluator = Evaluator(small_app, small_arch, bus_policy="ordered")
        ev = evaluator.evaluate(self.make(small_app, small_arch))
        assert ev.makespan_ms == pytest.approx(10.2)
        assert ev.initial_reconfig_ms == pytest.approx(3.0)
        assert ev.comm_ms == pytest.approx(1.0 + 1.0 + 0.2)

    def test_edge_bus_allows_parallel_transfers(self, small_app, small_arch):
        """Without serialization the two transfers overlap: 9.4 ms."""
        evaluator = Evaluator(small_app, small_arch, bus_policy="edge")
        ev = evaluator.evaluate(self.make(small_app, small_arch))
        assert ev.makespan_ms == pytest.approx(9.4)

    def test_ordered_never_faster_than_edge(self, small_app, small_arch):
        s = self.make(small_app, small_arch)
        ordered = Evaluator(small_app, small_arch, "ordered").evaluate(s)
        edge = Evaluator(small_app, small_arch, "edge").evaluate(s)
        assert ordered.makespan_ms >= edge.makespan_ms - 1e-9


class TestTwoContexts:
    def test_dynamic_reconfig_on_critical_path(self, small_app, small_arch):
        """Tasks 1 (ctx0) and 3 (ctx1): the Ehw edge delays ctx1 by
        t_R * 120 = 1.2 ms after task 1 finishes."""
        s = Solution(small_app, small_arch)
        for t in (0, 2, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        s.spawn_context(3, "fpga")
        evaluator = Evaluator(small_app, small_arch)
        ev = evaluator.evaluate(s)
        assert ev.num_contexts == 2
        assert ev.initial_reconfig_ms == pytest.approx(1.0)
        assert ev.dynamic_reconfig_ms == pytest.approx(1.2)
        # cpu: 0 (0..2), 2 (2..6); comm(0,1): 2..3; task1: 3..4
        # ctx switch: 4..5.2; comm(2,3): 6..6.5; task3 start:
        # max(5.2, 6.5, comm(1,3)=4..4.5 -> 4.5) = 6.5 .. 7.7
        # comm(3,4): 7.7..7.9; task4: 7.9..10.9; task5: 10.9..11.9
        assert ev.makespan_ms == pytest.approx(11.9)


class TestInfeasibleRealizations:
    def test_context_order_against_precedence_is_cyclic(
        self, small_app, small_arch
    ):
        s = Solution(small_app, small_arch)
        for t in (0, 2, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(3, "fpga")       # context 0 holds the successor
        s.spawn_context(1, "fpga")       # context 1 holds its predecessor
        evaluator = Evaluator(small_app, small_arch)
        ev = evaluator.evaluate(s)
        assert not ev.feasible
        assert math.isinf(ev.makespan_ms)
        with pytest.raises(CycleError):
            evaluator.evaluate(s, strict=True)

    def test_bad_software_order_is_cyclic(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        # order 1 before 0 violates 0 -> 1
        s.assign_to_processor(1, "cpu")
        s.assign_to_processor(0, "cpu")
        for t in (2, 3, 4, 5):
            s.assign_to_processor(t, "cpu")
        ev = Evaluator(small_app, small_arch).evaluate(s)
        assert not ev.feasible


class TestEvaluationBookkeeping:
    def test_evaluation_counter(self, small_app, small_arch, small_solution):
        evaluator = Evaluator(small_app, small_arch)
        evaluator.evaluate(small_solution)
        evaluator.makespan_ms(small_solution)
        assert evaluator.evaluations == 2

    def test_meets_deadline(self, small_app, small_arch, small_solution):
        ev = Evaluator(small_app, small_arch).evaluate(small_solution)
        assert ev.meets(21.0)
        assert not ev.meets(20.9)

    def test_impl_choice_changes_makespan(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 2, 3, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        base = Evaluator(small_app, small_arch).evaluate(s)
        s.set_implementation_choice(1, 1)  # 200 CLBs, 0.5 ms
        faster = Evaluator(small_app, small_arch).evaluate(s)
        # bigger impl: more reconfig (2.0) but still hidden under sw;
        # makespan driven by comm, not compute here
        assert faster.initial_reconfig_ms == pytest.approx(2.0)
        assert faster.clbs_used == 200
        assert base.clbs_used == 100
