"""Tests for search-graph construction (Esw/Ehw/comm/config plumbing)."""

import pytest

from repro.arch.reconfigurable import CONFIG_NODE
from repro.errors import ConfigurationError
from repro.mapping.search_graph import COMM_NODE, SearchGraphBuilder
from repro.mapping.solution import Solution


def hw_solution(small_app, small_arch):
    s = Solution(small_app, small_arch)
    for t in (0, 4, 5):
        s.assign_to_processor(t, "cpu")
    s.spawn_context(1, "fpga")
    s.assign_to_context(2, "fpga", 0)
    s.spawn_context(3, "fpga")
    return s


class TestBuilder:
    def test_bad_policy_rejected(self, small_app, small_arch):
        with pytest.raises(ConfigurationError):
            SearchGraphBuilder(small_app, small_arch, bus_policy="magic")

    def test_all_software_graph(self, small_app, small_arch, small_solution):
        graph = SearchGraphBuilder(small_app, small_arch).build(small_solution)
        # 6 task nodes, no comm, no config
        assert len(graph.dag) == 6
        assert graph.comm_nodes == []
        assert graph.config_nodes == []
        # Esw chains the five consecutive pairs; all app edges present
        order = small_solution.software_order("cpu")
        for a, b in zip(order, order[1:]):
            assert graph.dag.has_edge(a, b)

    def test_durations_follow_assignment(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        assert graph.duration(0) == pytest.approx(2.0)   # sw time
        assert graph.duration(1) == pytest.approx(1.0)   # hw impl0
        assert graph.duration(2) == pytest.approx(0.8)

    def test_comm_nodes_on_crossing_edges_only(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        comm_pairs = {(c[1], c[2]) for c in graph.comm_nodes}
        # crossing: 0->1, 0->2 (sw->hw) and 3->4 (hw->sw);
        # 1->3, 2->3 are intra-fpga; 4->5 intra-cpu.
        assert comm_pairs == {(0, 1), (0, 2), (3, 4)}
        for comm in graph.comm_nodes:
            assert graph.duration(comm) > 0.0

    def test_config_node_present_with_duration(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        config = (CONFIG_NODE, "fpga")
        assert config in graph.config_nodes
        assert graph.duration(config) == pytest.approx(1.8)  # 180 CLB * 0.01

    def test_context_edge_weight(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        # terminal of ctx0 = {1, 2}; initial of ctx1 = {3};
        # weight = 120 CLBs * 0.01 = 1.2 (tasks 1->3 and 2->3 are also
        # app edges, so the heavier context weight must win)
        assert graph.dag.edge_weight(1, 3) == pytest.approx(1.2)
        assert graph.dag.edge_weight(2, 3) == pytest.approx(1.2)

    def test_edge_policy_has_no_comm_nodes(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch, "edge").build(s)
        assert graph.comm_nodes == []
        assert graph.dag.edge_weight(0, 1) == pytest.approx(1.0)


class TestBusSerialization:
    def test_comm_chain_is_total_order(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        comms = graph.comm_nodes
        assert len(comms) == 3
        for a, b in zip(comms, comms[1:]):
            assert graph.dag.has_edge(a, b)

    def test_serialization_respects_ready_times(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        start = graph.start_times()
        comms = graph.comm_nodes
        for a, b in zip(comms, comms[1:]):
            assert start[a] <= start[b] + 1e-12

    def test_no_bus_overlap(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        start = graph.start_times()
        spans = sorted(
            (start[c], start[c] + graph.duration(c)) for c in graph.comm_nodes
        )
        for (s0, e0), (s1, _) in zip(spans, spans[1:]):
            assert s1 >= e0 - 1e-9


class TestMakespanInterface:
    def test_makespan_matches_start_times(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        start = graph.start_times()
        finish = max(t + graph.duration(n) for n, t in start.items())
        assert graph.makespan_ms() == pytest.approx(finish)

    def test_total_comm(self, small_app, small_arch):
        s = hw_solution(small_app, small_arch)
        graph = SearchGraphBuilder(small_app, small_arch).build(s)
        assert graph.total_comm_ms() == pytest.approx(1.0 + 1.0 + 0.2)
