"""Decode-or-repair seeding of persisted solution documents.

The warm-start contract: :func:`repro.mapping.seed.seed_solution` is
deterministic (no RNG), total (always returns a feasible, validating
solution), and honest about repairs (0 iff the document decoded
verbatim).
"""

import math

import pytest

from repro.io import solution_to_dict
from repro.errors import MappingError
from repro.mapping.evaluator import Evaluator
from repro.mapping.seed import seed_solution
from repro.mapping.solution import Solution


def mixed_solution(small_app, small_arch) -> Solution:
    """Tasks 1 and 2 share an FPGA context, the rest run in software."""
    solution = Solution(small_app, small_arch)
    for t in (0, 3, 4, 5):
        solution.assign_to_processor(t, "cpu")
    ctx = solution.spawn_context(1, "fpga")
    solution.assign_to_context(2, "fpga", ctx)
    solution.validate()
    return solution


def makespan_of(solution) -> float:
    return Evaluator(
        solution.application, solution.architecture
    ).evaluate(solution).makespan_ms


class TestVerbatimDecode:
    def test_identical_instance_replays_exactly(self, small_app, small_arch):
        donor = mixed_solution(small_app, small_arch)
        document = solution_to_dict(donor)
        seed, repairs = seed_solution(document, small_app, small_arch)
        assert repairs == 0
        assert solution_to_dict(seed) == document
        assert makespan_of(seed) == makespan_of(donor)

    def test_all_software_donor_replays_exactly(
        self, small_solution, small_app, small_arch
    ):
        document = solution_to_dict(small_solution)
        seed, repairs = seed_solution(document, small_app, small_arch)
        assert repairs == 0
        assert solution_to_dict(seed) == document

    def test_deterministic(self, small_app, small_arch):
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        a, _ = seed_solution(document, small_app, small_arch)
        b, _ = seed_solution(document, small_app, small_arch)
        assert solution_to_dict(a) == solution_to_dict(b)


class TestRepairs:
    def test_out_of_range_choice_is_clamped(self, small_app, small_arch):
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        document["implementation_choices"]["1"] = 99
        seed, repairs = seed_solution(document, small_app, small_arch)
        assert repairs >= 1
        task = small_app.task(1)
        assert (
            0 <= seed.implementation_choice(1) < task.num_implementations
        )
        assert math.isfinite(makespan_of(seed))

    def test_vanished_resource_diverts_to_processor(
        self, small_app, small_arch
    ):
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        # the donor's FPGA does not exist on the new platform
        document["contexts"] = {"ghost_fpga": document["contexts"]["fpga"]}
        seed, repairs = seed_solution(document, small_app, small_arch)
        assert repairs >= 2  # tasks 1 and 2 drifted off the FPGA
        assert seed.resource_name_of(1) == "cpu"
        assert seed.resource_name_of(2) == "cpu"
        seed.validate()
        assert math.isfinite(makespan_of(seed))

    def test_unplaced_tasks_are_inserted_after_predecessors(
        self, small_app, small_arch
    ):
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        # the donor never saw task 4 (classify): drop it from its order
        document["software_orders"]["cpu"] = [
            t for t in document["software_orders"]["cpu"] if t != 4
        ]
        seed, repairs = seed_solution(document, small_app, small_arch)
        assert repairs == 1
        order = seed.software_order("cpu")
        assert order.index(3) < order.index(4) < order.index(5)
        seed.validate()
        assert math.isfinite(makespan_of(seed))

    def test_every_seed_is_feasible(self, small_app, small_arch):
        # scrambled processor order: precedence-inverted donor documents
        # must still come back schedulable (via repair or the
        # all-software fallback)
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        document["software_orders"]["cpu"] = [5, 4, 3, 0]
        seed, repairs = seed_solution(document, small_app, small_arch)
        seed.validate()
        assert math.isfinite(makespan_of(seed))

    def test_repairs_count_placement_drift(self, small_app, small_arch):
        document = solution_to_dict(mixed_solution(small_app, small_arch))
        document["contexts"] = {"ghost": document["contexts"]["fpga"]}
        _, repairs = seed_solution(document, small_app, small_arch)
        document_ok = solution_to_dict(
            mixed_solution(small_app, small_arch)
        )
        _, repairs_ok = seed_solution(document_ok, small_app, small_arch)
        assert repairs > repairs_ok == 0


class TestErrors:
    def test_non_solution_document_raises(self, small_app, small_arch):
        with pytest.raises(MappingError, match="not a solution"):
            seed_solution(
                {"format": "instance"}, small_app, small_arch
            )
