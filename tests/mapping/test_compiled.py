"""The compile pass: dense tables, id layout, NumPy views."""

from __future__ import annotations

import pytest

from repro.arch.architecture import epicure_architecture
from repro.mapping.compiled import CompiledInstance, compile_instance
from repro.mapping.engine import ArrayEngine, IncrementalEngine
from repro.model.motion import motion_detection_application


@pytest.fixture
def compiled(small_app, small_arch):
    return compile_instance(small_app, small_arch.bus)


class TestTables:
    def test_id_layout(self, compiled, small_app):
        """Tasks occupy [0, T), comm nodes [T, T + D) in dependency
        order — the layout every engine's fast path assumes."""
        assert compiled.ntasks == len(small_app)
        assert compiled.ndeps == small_app.dag.num_edges()
        assert compiled.tasks == list(small_app.task_indices())
        for j in range(compiled.ndeps):
            assert compiled.dep_comm[j] == compiled.ntasks + j
        assert len(compiled.interner) == compiled.ntasks + compiled.ndeps

    def test_durations_and_impls(self, compiled, small_app):
        for i, t in enumerate(compiled.tasks):
            task = small_app.task(t)
            assert compiled.sw_ms[i] == task.sw_time_ms
            if task.hardware_capable:
                assert compiled.impl_ms[i] == [
                    impl.time_ms for impl in task.implementations
                ]
            else:
                assert compiled.impl_ms[i] is None

    def test_transfer_times_use_the_bus(self, compiled, small_app, small_arch):
        deps = list(small_app.dependencies())
        for j, (_src, _dst, kbytes) in enumerate(deps):
            assert compiled.dep_transfer[j] == (
                small_arch.bus.transfer_time_ms(kbytes)
            )

    def test_static_layer_indegrees(self, compiled):
        # Every comm node has exactly one static in-edge (its source);
        # every task's static indegree is its dependency fan-in.
        for j in range(compiled.ndeps):
            assert compiled.indeg_static[compiled.ntasks + j] == 1
        for i in range(compiled.ntasks):
            assert compiled.indeg_static[i] == len(compiled.pred_comms[i])


class TestNumpyViews:
    def test_views_match_lists(self, compiled):
        np = pytest.importorskip("numpy")
        assert compiled.dep_src_np.tolist() == compiled.dep_src
        assert compiled.dep_transfer_np.tolist() == compiled.dep_transfer
        assert compiled.sw_ms_np.tolist() == compiled.sw_ms
        # static edge arrays: [src -> comm] then [comm -> dst]
        ndeps = compiled.ndeps
        assert compiled.static_edge_src_np[:ndeps].tolist() == compiled.dep_src
        assert (
            compiled.static_edge_src_np[ndeps:].tolist() == compiled.dep_comm
        )
        assert compiled.static_edge_dst_np[:ndeps].tolist() == compiled.dep_comm
        assert compiled.static_edge_dst_np[ndeps:].tolist() == compiled.dep_dst
        assert compiled.static_edge_src_np is compiled.static_edge_src_np  # cached

    def test_impl_matrix_padding(self, compiled):
        np = pytest.importorskip("numpy")
        matrix = compiled.impl_ms_matrix
        for i, row in enumerate(compiled.impl_ms):
            if row is None:
                assert np.isinf(matrix[i]).all()
            else:
                assert matrix[i, : len(row)].tolist() == row
                assert np.isinf(matrix[i, len(row):]).all()

    def test_processor_matrix(self, compiled, small_arch):
        matrix = compiled.processor_ms_matrix(small_arch)
        assert matrix.shape == (1, compiled.ntasks)
        for i in range(compiled.ntasks):
            assert matrix[0, i] == compiled.sw_ms[i] / 1.0


class TestEngineSharing:
    def test_engines_consume_the_compile_pass(self, small_app, small_arch):
        engine = IncrementalEngine(small_app, small_arch)
        assert isinstance(engine.compiled, CompiledInstance)
        assert engine._dep_transfer is engine.compiled.dep_transfer
        array = ArrayEngine(small_app, small_arch)
        assert array.compiled.ntasks == engine.compiled.ntasks

    def test_motion_compiles(self):
        app = motion_detection_application()
        arch = epicure_architecture(2000)
        compiled = compile_instance(app, arch.bus)
        assert compiled.ntasks == len(app)
        assert compiled.ndeps == app.dag.num_edges()


class TestGraphShape:
    """Static level statistics from the compile pass (the depth-aware
    dispatcher's inputs)."""

    def test_small_app_levels(self, compiled, small_app):
        # 0 -> (1, 2) -> 3 -> 4 -> 5 with a comm node on each of the 6
        # dependencies: task and comm levels alternate along the spine,
        # so the 12 nodes stack 9 levels deep.
        n = len(small_app.task_indices()) + compiled.ndeps
        assert compiled.depth == 9
        assert compiled.mean_level_width == pytest.approx(n / 9)

    def test_fork_preserves_shape(self, compiled):
        fork = compiled.fork()
        assert fork.depth == compiled.depth
        assert fork.mean_level_width == compiled.mean_level_width

    def test_motion_app_is_deep_and_narrow(self):
        compiled = compile_instance(
            motion_detection_application(),
            epicure_architecture(n_clbs=2000).bus,
        )
        assert compiled.depth >= 2
        assert compiled.mean_level_width >= 1.0
        # The paper's applications are serialized pipelines: far below
        # the dispatcher's kernel threshold.
        assert compiled.mean_level_width < ArrayEngine.KERNEL_MIN_MEAN_WIDTH
