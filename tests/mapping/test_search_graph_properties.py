"""Structural property tests on the search-graph builder.

Hypothesis drives random solutions of random applications and checks
the invariants the realization must always satisfy.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import CONFIG_NODE, ReconfigurableCircuit
from repro.errors import CycleError
from repro.mapping.search_graph import COMM_NODE, SearchGraphBuilder
from repro.mapping.solution import random_initial_solution
from repro.model.generator import GeneratorConfig, random_application


def build_random(seed):
    app = random_application(
        GeneratorConfig(num_tasks=14, software_only_fraction=0.3),
        seed=seed % 7,
    )
    arch = Architecture("prop", bus=Bus(rate_kbytes_per_ms=25.0))
    arch.add_resource(Processor("cpu"))
    arch.add_resource(
        ReconfigurableCircuit("fpga", n_clbs=400, reconfig_ms_per_clb=0.01)
    )
    solution = random_initial_solution(app, arch, random.Random(seed))
    graph = SearchGraphBuilder(app, arch).build(solution)
    return app, arch, solution, graph


@given(seed=st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_node_inventory(seed):
    """Task nodes all present; one comm node per crossing data edge;
    one config node iff the DRLC is used."""
    app, arch, solution, graph = build_random(seed)
    for t in app.task_indices():
        assert t in graph.dag
    expected_comms = set()
    for src, dst, kbytes in app.dependencies():
        crossing = (
            solution.resource_name_of(src) != solution.resource_name_of(dst)
        )
        if crossing and kbytes > 0:
            expected_comms.add((COMM_NODE, src, dst))
    assert set(graph.comm_nodes) == expected_comms
    uses_fpga = bool(solution.contexts("fpga"))
    assert ((CONFIG_NODE, "fpga") in graph.config_nodes) == uses_fpga


@given(seed=st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_durations_nonnegative_and_consistent(seed):
    app, arch, solution, graph = build_random(seed)
    for node in graph.dag.nodes():
        assert graph.duration(node) >= 0.0
    for t in app.task_indices():
        where = solution.context_of(t)
        if where is None:
            assert graph.duration(t) == pytest.approx(app.task(t).sw_time_ms)
        else:
            impl = app.task(t).implementation(
                solution.implementation_choice(t)
            )
            assert graph.duration(t) == pytest.approx(impl.time_ms)


@given(seed=st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_context_total_order(seed):
    """Every node of context k finishes before any node of context k+1
    starts (the GTLP order of section 3.3)."""
    app, arch, solution, graph = build_random(seed)
    contexts = solution.contexts("fpga")
    if len(contexts) < 2:
        return
    start = graph.start_times()
    for k in range(len(contexts) - 1):
        latest_end = max(
            start[t] + graph.duration(t) for t in contexts[k]
        )
        earliest_start = min(start[t] for t in contexts[k + 1])
        assert earliest_start >= latest_end - 1e-9


@given(seed=st.integers(0, 50_000))
@settings(max_examples=40, deadline=None)
def test_property_makespan_dominates_every_resource_load(seed):
    """The makespan is at least the busy time of each resource."""
    app, arch, solution, graph = build_random(seed)
    makespan = graph.makespan_ms()
    sw_load = sum(
        app.task(t).sw_time_ms for t in solution.software_order("cpu")
    )
    assert makespan >= sw_load - 1e-9
    assert makespan >= graph.total_comm_ms() - 1e-9
