"""Tests for schedule extraction and Gantt rendering."""

import pytest

from repro.mapping.evaluator import Evaluator
from repro.mapping.gantt import render_gantt
from repro.mapping.schedule import Schedule, ScheduleEntry, extract_schedule
from repro.mapping.solution import Solution


def build(small_app, small_arch):
    s = Solution(small_app, small_arch)
    for t in (0, 4, 5):
        s.assign_to_processor(t, "cpu")
    s.spawn_context(1, "fpga")
    s.assign_to_context(2, "fpga", 0)
    s.spawn_context(3, "fpga")
    evaluator = Evaluator(small_app, small_arch)
    graph = evaluator.realize(s)
    return s, graph, extract_schedule(s, graph)


class TestExtraction:
    def test_entry_count(self, small_app, small_arch):
        _, graph, schedule = build(small_app, small_arch)
        tasks = [e for e in schedule.entries if e.kind == "task"]
        comms = [e for e in schedule.entries if e.kind == "comm"]
        reconfigs = [e for e in schedule.entries if e.kind == "reconfig"]
        assert len(tasks) == 6
        assert len(comms) == 3
        assert len(reconfigs) == 2  # initial + one dynamic

    def test_rows(self, small_app, small_arch):
        _, _, schedule = build(small_app, small_arch)
        rows = set(schedule.rows())
        assert "cpu" in rows
        assert "bus" in rows
        assert "fpga/ctx0" in rows and "fpga/ctx1" in rows
        assert "fpga/reconfig" in rows

    def test_makespan_matches_graph(self, small_app, small_arch):
        _, graph, schedule = build(small_app, small_arch)
        assert schedule.makespan_ms == pytest.approx(graph.makespan_ms())

    def test_no_overlap_on_exclusive_rows(self, small_app, small_arch):
        _, _, schedule = build(small_app, small_arch)
        assert schedule.check_no_overlap("cpu")
        assert schedule.check_no_overlap("bus")

    def test_entries_respect_precedence(self, small_app, small_arch):
        s, graph, schedule = build(small_app, small_arch)
        finish = {}
        start = {}
        for e in schedule.entries:
            if e.kind == "task":
                label = e.label
                start[label] = e.start_ms
                finish[label] = e.end_ms
        app = s.application
        for src, dst, _ in app.dependencies():
            assert (
                start[app.task(dst).name] >= finish[app.task(src).name] - 1e-9
            )

    def test_overlap_detector(self):
        schedule = Schedule(
            entries=[
                ScheduleEntry(0.0, 2.0, "cpu", "a", "task"),
                ScheduleEntry(1.0, 3.0, "cpu", "b", "task"),
            ],
            makespan_ms=3.0,
        )
        assert not schedule.check_no_overlap("cpu")


class TestGantt:
    def test_render_contains_rows_and_makespan(self, small_app, small_arch):
        _, _, schedule = build(small_app, small_arch)
        text = render_gantt(schedule, width=60)
        assert "makespan" in text
        assert "cpu" in text
        assert "fpga/ctx0" in text

    def test_empty_schedule(self):
        assert "empty" in render_gantt(Schedule(entries=[], makespan_ms=0.0))
