"""Tests for the Solution mapping state."""

import pytest

from repro.errors import CapacityError, MappingError
from repro.mapping.solution import Solution


class TestAssignment:
    def test_assign_to_processor_positions(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.assign_to_processor(0, "cpu")
        s.assign_to_processor(1, "cpu")
        s.assign_to_processor(2, "cpu", position=1)
        assert s.software_order("cpu") == [0, 2, 1]
        assert s.resource_name_of(2) == "cpu"

    def test_position_out_of_range(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        with pytest.raises(MappingError):
            s.assign_to_processor(0, "cpu", position=5)

    def test_unknown_processor(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        with pytest.raises(MappingError):
            s.assign_to_processor(0, "gpu")

    def test_unassigned_task_queries(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        with pytest.raises(MappingError):
            s.resource_name_of(0)
        assert not s.is_assigned(0)

    def test_reassignment_moves_off_old_resource(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.assign_to_processor(1, "cpu")
        s.spawn_context(1, "fpga")
        assert s.software_order("cpu") == []
        assert s.context_of(1) == ("fpga", 0)


class TestContexts:
    def test_spawn_and_join(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        assert s.contexts("fpga") == [[1, 2]]
        assert s.context_clbs("fpga", 0) == 180

    def test_capacity_enforced(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.set_implementation_choice(1, 1)  # 200 CLBs
        s.set_implementation_choice(2, 1)  # 160 CLBs -> 360 > 300
        s.spawn_context(1, "fpga")
        with pytest.raises(CapacityError):
            s.assign_to_context(2, "fpga", 0)

    def test_software_only_task_rejected(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        with pytest.raises(MappingError):
            s.spawn_context(0, "fpga")
        s.spawn_context(1, "fpga")
        with pytest.raises(MappingError):
            s.assign_to_context(4, "fpga", 0)

    def test_empty_context_pruned_on_unassign(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        s.spawn_context(3, "fpga")
        assert s.num_contexts("fpga") == 2
        s.assign_to_processor(1, "cpu")
        assert s.contexts("fpga") == [[3]]
        assert s.context_of(3) == ("fpga", 0)

    def test_spawn_position(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        s.spawn_context(3, "fpga")
        s.spawn_context(2, "fpga", position=1)
        assert s.contexts("fpga") == [[1], [2], [3]]

    def test_initial_and_terminal_nodes(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        s.assign_to_context(3, "fpga", 0)  # 100+80+120 = 300 exactly
        # preds of 1, 2 (task 0) are outside; 3's preds (1, 2) are inside
        assert set(s.context_initial_nodes("fpga", 0)) == {1, 2}
        # succ of 3 (task 4) outside; 1, 2's succ (3) inside
        assert s.context_terminal_nodes("fpga", 0) == [3]

    def test_task_too_big_for_device(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.set_implementation_choice(3, 1)  # 240 CLBs
        s.spawn_context(1, "fpga")
        s.set_implementation_choice(1, 1)  # 200 in ctx
        # spawning a 240-CLB context works (240 < 300)...
        s.spawn_context(3, "fpga")
        # ...but a 400-CLB fake impl would not; emulate via capacity check
        fpga = small_arch.resource("fpga")
        assert not fpga.fits(0, 400)


class TestImplementationChoices:
    def test_default_choice_is_zero(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        assert s.implementation_choice(1) == 0
        assert s.task_clbs(1) == 100

    def test_choice_changes_area(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.set_implementation_choice(1, 1)
        assert s.task_clbs(1) == 200

    def test_invalid_choice_rejected(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        with pytest.raises(Exception):
            s.set_implementation_choice(1, 7)


class TestValidationAndCopy:
    def test_valid_full_assignment(self, small_solution):
        small_solution.validate()

    def test_missing_task_detected(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        s.assign_to_processor(0, "cpu")
        with pytest.raises(MappingError):
            s.validate()

    def test_copy_is_deep(self, small_solution):
        clone = small_solution.copy()
        clone.spawn_context(1, "fpga")
        assert small_solution.resource_name_of(1) == "cpu"
        assert clone.resource_name_of(1) == "fpga"
        small_solution.validate()
        clone.validate()

    def test_summary_mentions_resources(self, small_solution):
        text = small_solution.summary()
        assert "cpu" in text and "fpga" in text

    def test_hardware_software_lists(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 2, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.spawn_context(1, "fpga")
        s.assign_to_context(3, "fpga", 0)
        assert sorted(s.hardware_tasks()) == [1, 3]
        assert sorted(s.software_tasks()) == [0, 2, 4, 5]
