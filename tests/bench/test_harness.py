"""BenchCase harness: timing, registry, suite execution."""

import pytest

from repro.bench.harness import (
    BenchContext,
    FunctionCase,
    context_for_suite,
    list_cases,
    run_case,
    run_suite,
    timing_stats,
)
from repro.errors import ConfigurationError


def make_case(fn, **kwargs):
    kwargs.setdefault("name", "test/case")
    return FunctionCase(fn=fn, **kwargs)


class TestContext:
    def test_suite_defaults(self):
        quick = context_for_suite("quick")
        full = context_for_suite("full")
        assert quick.evals < full.evals
        assert quick.iterations < full.iterations

    def test_overrides(self):
        context = context_for_suite("quick", jobs=4, evals=7)
        assert context.jobs == 4
        assert context.evals == 7
        # None overrides fall back to the suite default
        assert context.iterations == context_for_suite("quick").iterations

    def test_unknown_suite(self):
        with pytest.raises(ConfigurationError):
            context_for_suite("weekly")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BenchContext(jobs=0).validate()
        with pytest.raises(ConfigurationError):
            BenchContext(repeats=0).validate()


class TestTimingStats:
    def test_median_and_iqr(self):
        median, iqr = timing_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert median == 3.0
        assert iqr == pytest.approx(2.0)

    def test_single_sample(self):
        median, iqr = timing_stats([2.5])
        assert median == 2.5
        assert iqr == 0.0


class TestRunCase:
    def test_counts_and_metrics(self):
        calls = []

        def fn(context, state):
            calls.append(state)
            return {"value": 42, "evaluations": 100, "report": "hello"}

        case = make_case(fn, setup=lambda context: "prepared")
        context = BenchContext(repeats=3, warmup=2)
        result = run_case(case, context)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert all(state == "prepared" for state in calls)
        assert len(result.timings_s) == 3
        assert result.metrics == {"value": 42, "evaluations": 100}
        assert result.report == "hello"  # stripped from metrics
        assert result.evals_per_sec is not None
        assert result.evals_per_sec == pytest.approx(
            100 / result.median_s, rel=1e-9
        )

    def test_no_evaluations_no_counter(self):
        case = make_case(lambda context, state: {"value": 1})
        result = run_case(case, BenchContext(repeats=1, warmup=0))
        assert result.evals_per_sec is None

    def test_profile_dump(self):
        case = make_case(lambda context, state: {"v": sum(range(100))})
        result = run_case(
            case, BenchContext(repeats=1, warmup=0), profile=True
        )
        assert result.profile is not None
        assert "cumulative" in result.profile
        # Without the flag no profiling run happens.
        result = run_case(case, BenchContext(repeats=1, warmup=0))
        assert result.profile is None

    def test_repeats_and_warmup_caps(self):
        calls = []
        case = make_case(
            lambda context, state: (calls.append(1), {"v": 0})[1],
            repeats_cap=1,
            warmup_cap=0,
        )
        result = run_case(case, BenchContext(repeats=5, warmup=2))
        assert len(calls) == 1
        assert len(result.timings_s) == 1


class TestRegistry:
    def test_quick_is_subset_of_full(self):
        quick = {case.name for case in list_cases(suite="quick")}
        full = {case.name for case in list_cases(suite="full")}
        assert quick <= full

    def test_pattern_filter(self):
        cases = list_cases(pattern="throughput/motion")
        assert cases
        assert all("throughput/motion" in case.name for case in cases)

    def test_unknown_scenario_reference_rejected(self):
        from repro.bench.harness import register_case

        case = make_case(
            lambda context, state: {},
            name="test/bad-scenario",
            scenarios=("no/such",),
        )
        with pytest.raises(ConfigurationError):
            register_case(case)


class TestRunSuite:
    def test_empty_selection_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite("quick", pattern="nothing-matches-this")

    def test_tiny_throughput_slice(self):
        context = context_for_suite(
            "quick", evals=10, repeats=1, warmup=0
        )
        suite_run = run_suite(
            "quick", context, pattern="throughput/tgff/12"
        )
        assert len(suite_run.results) == 3  # full + incremental + array
        engines = {
            result.metrics["engine"] for result in suite_run.results
        }
        assert engines == {"full", "incremental", "array"}
        descriptor = suite_run.scenarios["tgff/12"]
        assert descriptor["num_tasks"] == 12
        assert len(descriptor["hash"]) == 64

    def test_multiseed_search_case_through_runner(self):
        context = context_for_suite(
            "quick", evals=10, iterations=60, runs=2, repeats=1,
            warmup=0, jobs=2,
        )
        suite_run = run_suite(
            "quick", context, pattern="search/sa_multiseed@motion/2000"
        )
        (result,) = suite_run.results
        assert result.metrics["runs"] == 2
        assert result.metrics["evaluations"] > 0
        assert result.metrics["best_cost_min"] <= (
            result.metrics["best_cost_mean"]
        )
