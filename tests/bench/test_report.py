"""Results schema, persistence, and the compare() regression gate."""

import copy

import pytest

from repro.bench.harness import BenchContext, CaseResult, SuiteRun
from repro.bench.report import (
    RESULTS_VERSION,
    compare,
    format_comparison,
    format_results_table,
    load_results,
    results_document,
    validate_results,
    write_results,
)
from repro.errors import ConfigurationError


def make_document(medians, scenario_hashes=None, suite="quick"):
    """A minimal results document with the given case medians."""
    suite_run = SuiteRun(suite=suite, context=BenchContext(suite=suite))
    for name, median in medians.items():
        suite_run.results.append(
            CaseResult(
                name=name,
                suites=(suite,),
                scenarios=(),
                timings_s=[median] * 3,
                median_s=median,
                iqr_s=0.0,
                metrics={"evaluations": 100},
                evals_per_sec=100 / median if median else None,
            )
        )
    for name, digest in (scenario_hashes or {}).items():
        suite_run.scenarios[name] = {
            "family": "tgff", "seed": 0, "params": {},
            "hash": digest, "num_tasks": 12, "num_edges": 11,
            "deadline_ms": 10.0, "resources": ["arm922", "virtex"],
        }
    return results_document(
        suite_run, environment={"python": "test"}, created_unix=0.0
    )


class TestDocuments:
    def test_schema_fields(self):
        document = make_document({"case/a": 1.0}, {"tgff/12": "ab" * 32})
        assert document["format"] == "bench-results"
        assert document["version"] == RESULTS_VERSION
        validate_results(document)

    def test_write_load_roundtrip(self, tmp_path):
        document = make_document({"case/a": 1.0})
        path = str(tmp_path / "BENCH_quick.json")
        write_results(document, path)
        assert load_results(path) == document

    def test_validation_rejects_wrong_format(self):
        document = make_document({"case/a": 1.0})
        document["format"] = "something-else"
        with pytest.raises(ConfigurationError):
            validate_results(document)

    def test_validation_rejects_wrong_version(self):
        document = make_document({"case/a": 1.0})
        document["version"] = 99
        with pytest.raises(ConfigurationError):
            validate_results(document)

    def test_validation_rejects_missing_case_fields(self):
        document = make_document({"case/a": 1.0})
        del document["cases"][0]["median_s"]
        with pytest.raises(ConfigurationError):
            validate_results(document)

    def test_results_table_renders(self):
        table = format_results_table(make_document({"case/a": 0.5}))
        assert "case/a" in table
        assert "500.0 ms" in table


class TestCompare:
    def test_injected_2x_slowdown_is_flagged(self):
        old = make_document({"case/a": 1.0, "case/b": 1.0})
        new = make_document({"case/a": 2.0, "case/b": 1.0})
        comparison = compare(old, new)
        assert not comparison.ok
        assert [d.name for d in comparison.regressions] == ["case/a"]
        delta = comparison.regressions[0]
        assert delta.ratio == pytest.approx(2.0)
        assert "REGRESSION" in format_comparison(comparison)

    def test_noise_within_threshold_is_not_flagged(self):
        old = make_document({"case/a": 1.0, "case/b": 0.004})
        new = make_document({
            "case/a": 1.2,      # +20% < 1.3x threshold
            "case/b": 0.006,    # +50% but 2 ms — under the noise floor
        })
        comparison = compare(old, new)
        assert comparison.ok
        assert not comparison.regressions
        assert all(d.status == "ok" for d in comparison.deltas)

    def test_improvement_reported_not_failing(self):
        old = make_document({"case/a": 2.0})
        new = make_document({"case/a": 1.0})
        comparison = compare(old, new)
        assert comparison.ok
        assert comparison.deltas[0].status == "improved"

    def test_scenario_drift_fails_even_with_good_timings(self):
        old = make_document({"case/a": 1.0}, {"tgff/12": "a" * 64})
        new = make_document({"case/a": 1.0}, {"tgff/12": "b" * 64})
        comparison = compare(old, new)
        assert not comparison.ok
        assert comparison.scenario_drift == ["tgff/12"]
        assert "drift" in format_comparison(comparison)

    def test_case_set_changes_reported(self):
        old = make_document({"case/a": 1.0, "case/gone": 1.0})
        new = make_document({"case/a": 1.0, "case/new": 1.0})
        comparison = compare(old, new)
        assert comparison.missing_cases == ["case/gone"]
        assert comparison.new_cases == ["case/new"]
        assert comparison.ok  # informational, not failing

    def test_different_suites_rejected(self):
        quick = make_document({"case/a": 1.0}, suite="quick")
        full = make_document({"case/a": 1.0}, suite="full")
        with pytest.raises(ConfigurationError):
            compare(quick, full)

    def test_different_measurement_context_rejected(self):
        old = make_document({"case/a": 1.0})
        new = copy.deepcopy(old)
        new["context"]["evals"] = old["context"]["evals"] * 25
        with pytest.raises(ConfigurationError):
            compare(old, new)

    def test_threshold_validation(self):
        document = make_document({"case/a": 1.0})
        with pytest.raises(ConfigurationError):
            compare(document, document, threshold=1.0)
        with pytest.raises(ConfigurationError):
            compare(document, document, min_delta_s=-1.0)

    def test_custom_threshold(self):
        old = make_document({"case/a": 1.0})
        new = make_document({"case/a": 1.4})
        assert not compare(old, new, threshold=1.3).ok
        assert compare(old, new, threshold=1.5).ok

    def test_round_trip_then_compare(self, tmp_path):
        """The CLI path: write both documents, reload, diff."""
        old = make_document({"case/a": 1.0}, {"tgff/12": "c" * 64})
        new = copy.deepcopy(old)
        new["cases"][0]["median_s"] = 2.5
        old_path = str(tmp_path / "old.json")
        new_path = str(tmp_path / "new.json")
        write_results(old, old_path)
        write_results(new, new_path)
        comparison = compare(load_results(old_path), load_results(new_path))
        assert not comparison.ok
