"""Registered suites: coverage of the acceptance axes + spot execution."""

import pytest

from repro.bench import get_scenario
from repro.bench.harness import (
    CASE_REGISTRY,
    context_for_suite,
    get_case,
    list_cases,
    run_case,
)


class TestCoverage:
    def test_quick_suite_spans_the_acceptance_axes(self):
        """>= 12 scenarios, >= 4 topology families, both engines —
        the acceptance criteria of the benchmark subsystem."""
        quick = list_cases(suite="quick")
        scenarios = {name for case in quick for name in case.scenarios}
        assert len(scenarios) >= 12
        families = {get_scenario(name).family for name in scenarios}
        assert len(families) >= 4
        throughput = [
            case for case in quick if case.name.startswith("throughput/")
        ]
        assert {case.name.rsplit("@", 1)[1] for case in throughput} == {
            "full", "incremental", "array",
        }

    def test_every_historical_script_has_a_case(self):
        """The 14 bench_*.py scripts' measurement bodies live here."""
        expected = {
            "ablation/bus", "ablation/impls", "ablation/reconfig",
            "ablation/schedules", "analysis/combinatorics",
            "experiment/arch_exploration", "experiment/comparison",
            "experiment/fig2_trace", "experiment/fig3_sweep",
            "experiment/pareto_front", "experiment/quality_knob",
            "kernel/closure_incremental", "kernel/closure_full_recompute",
            "kernel/solution_evaluation", "runner/parallel_scaling",
        }
        assert expected <= set(CASE_REGISTRY)

    def test_heavy_cases_run_once(self):
        for name in ("experiment/fig3_sweep", "runner/parallel_scaling",
                     "experiment/comparison"):
            case = get_case(name)
            assert case.repeats_cap == 1
            assert case.warmup_cap == 0
            assert case.suites == ("full",)


class TestExecution:
    @pytest.fixture(scope="class")
    def tiny(self):
        return context_for_suite(
            "quick", evals=10, iterations=60, runs=2, repeats=1, warmup=0
        )

    def test_throughput_case(self, tiny):
        result = run_case(get_case("throughput/series_parallel/24@incremental"), tiny)
        assert result.metrics["evaluations"] == 10
        assert result.metrics["final_makespan_ms"] > 0
        assert result.evals_per_sec > 0

    def test_engines_agree_on_final_makespan(self, tiny):
        full = run_case(get_case("throughput/fork_join/24@full"), tiny)
        inc = run_case(get_case("throughput/fork_join/24@incremental"), tiny)
        arr = run_case(get_case("throughput/fork_join/24@array"), tiny)
        assert (
            full.metrics["final_makespan_ms"]
            == inc.metrics["final_makespan_ms"]
            == arr.metrics["final_makespan_ms"]
        ), "engine parity must hold inside the bench loop"

    def test_rc_layout_micro_case(self, tiny):
        result = run_case(get_case("micro/rc_layout_realization"), tiny)
        assert result.metrics["evaluations"] == tiny.evals
        assert result.metrics["flippable_tasks"] > 0
        assert result.evals_per_sec > 0

    def test_combinatorics_case_exact_numbers(self, tiny):
        result = run_case(get_case("analysis/combinatorics"), tiny)
        assert result.metrics["total_orders"] == 348_840
        assert result.report is not None

    def test_closure_kernels_agree(self, tiny):
        a = run_case(get_case("kernel/closure_incremental"), tiny)
        b = run_case(get_case("kernel/closure_full_recompute"), tiny)
        assert a.metrics["longest_path"] == b.metrics["longest_path"]

    def test_reconfig_ablation_tiny(self, tiny):
        """The runner-ported ablation executes end-to-end (2 modes x 2
        seeds through run_search_jobs)."""
        result = run_case(get_case("ablation/reconfig"), tiny)
        rows = result.metrics["rows"]
        assert set(rows) == {"partial", "full"}
        for row in rows.values():
            assert row["exec_mean"] > 0
