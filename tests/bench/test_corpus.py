"""Scenario corpus: registry shape, determinism, hashing."""

import pytest

from repro.bench import corpus
from repro.bench.corpus import (
    ARCHITECTURE_REGIMES,
    CORPUS,
    FAMILIES,
    get_scenario,
    iter_scenarios,
    scenario,
    scenario_hash,
)
from repro.errors import ConfigurationError
from repro.io import instance_to_dict

#: Cross-version determinism pin: the same ``(family, params, seed)``
#: must materialize to a bit-identical instance document on every run,
#: machine and supported Python version.  If one of these changes, the
#: instance *content* changed — every archived BENCH_*.json baseline is
#: invalidated and the corpus needs a version bump, not a test edit.
GOLDEN_HASHES = {
    "tgff/12":
        "1a8c496b7480f54703e09affb55e64b24e9c02e28caa8d4d27715486f72f91be",
    "layered/24":
        "a4853cd6a1e91e247082d757279bb1cba8187d66546d82f72256e0157e3f07b2",
    "series_parallel/24":
        "2e0117f6ab9ce0365d360ae7c2605eec47889ef2b8f03577cf1128fe642d12e6",
    "fork_join/24":
        "52a638c28bfee435a7e12e9a87e1e777fb661bb1abb948615390f109dd1b7ff4",
    "motion/2000":
        "3f74890ca02b353777a2fa08eeeb6295859592595155ce0ea32d9fb3fee173b1",
}


class TestRegistry:
    def test_families_cover_all_topologies(self):
        assert {"motion", "tgff", "layered", "series_parallel",
                "fork_join"} <= set(FAMILIES)

    def test_corpus_is_nonempty_and_named_uniquely(self):
        assert len(CORPUS) >= 20
        assert len({s.name for s in CORPUS.values()}) == len(CORPUS)

    def test_quick_subset_covers_the_acceptance_axes(self):
        quick = list(iter_scenarios(tag="quick"))
        assert len(quick) >= 12
        assert len({s.family for s in quick}) >= 4

    def test_family_filter(self):
        tgff = list(iter_scenarios(family="tgff"))
        assert tgff and all(s.family == "tgff" for s in tgff)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no/such/scenario")

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("no_such_family")

    def test_duplicate_family_rejected(self):
        with pytest.raises(ConfigurationError):
            corpus.register_family("motion")(lambda seed: None)


class TestMaterialization:
    def test_build_sets_name_and_metadata(self):
        entry = get_scenario("tgff/36")
        instance = entry.build()
        assert instance.name == "tgff/36"
        assert instance.metadata["family"] == "tgff"
        assert instance.metadata["seed"] == entry.seed
        assert instance.metadata["params"] == {"num_tasks": 36}
        assert len(instance.application) == 36
        assert instance.deadline_ms is not None
        instance.application.validate()
        instance.architecture.validate()

    def test_regimes(self):
        asic_rich = get_scenario("motion/asic_rich").build()
        assert len(asic_rich.architecture.asics()) == 2
        bus_starved = get_scenario("motion/bus_starved").build()
        assert bus_starved.architecture.bus.rate_kbytes_per_ms == 5.0
        rc_heavy = get_scenario("motion/rc_heavy").build()
        assert len(rc_heavy.architecture.reconfigurable_circuits()) == 2

    def test_unknown_regime_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("tgff", num_tasks=12, regime="quantum").build()

    def test_regime_list_is_exhaustive(self):
        for regime in ARCHITECTURE_REGIMES:
            instance = scenario(
                "tgff", num_tasks=12, regime=regime
            ).build()
            instance.architecture.validate()


class TestDeterminism:
    def test_rebuild_is_bit_identical(self):
        entry = get_scenario("series_parallel/48")
        assert instance_to_dict(entry.build()) == instance_to_dict(entry.build())
        assert scenario_hash(entry) == scenario_hash(entry)

    def test_different_seeds_differ(self):
        a = scenario("tgff", seed=1, num_tasks=20)
        b = scenario("tgff", seed=2, num_tasks=20)
        assert scenario_hash(a) != scenario_hash(b)

    def test_golden_hashes(self):
        """Same seed -> identical instance hash, pinned across versions.

        Guards against global-``random`` leakage anywhere under
        ``model.generator`` / ``graph.generators`` / ``io`` — any
        nondeterminism or content drift changes these digests.
        """
        for name, expected in GOLDEN_HASHES.items():
            assert scenario_hash(get_scenario(name)) == expected, name

    def test_hash_covers_architecture(self):
        small = scenario("tgff", num_tasks=12, n_clbs=500)
        large = scenario("tgff", num_tasks=12, n_clbs=5000)
        assert scenario_hash(small) != scenario_hash(large)
