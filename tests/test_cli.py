"""CLI tests (small budgets, output captured via capsys)."""

import json

import pytest

from repro.cli import main
from repro.io import dump_application, load_solution
from repro.model.generator import GeneratorConfig, random_application
from repro.model.motion import motion_detection_application
from repro.arch.architecture import epicure_architecture


class TestInfo:
    def test_default_benchmark(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "motion_detection" in out
        assert "76.40 ms" in out
        assert "348,840" in out  # solution-space report

    def test_custom_application_file(self, tmp_path, capsys):
        app = random_application(GeneratorConfig(num_tasks=8), seed=1)
        path = tmp_path / "app.json"
        path.write_text(dump_application(app))
        assert main(["info", "--application", str(path)]) == 0
        assert app.name in capsys.readouterr().out


class TestExplore:
    def test_basic_run(self, capsys):
        assert main([
            "explore", "--iterations", "400", "--warmup", "80",
            "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "best mapping" in out
        assert "reconfiguration" in out

    def test_plot_gantt_and_save(self, tmp_path, capsys):
        save = tmp_path / "solution.json"
        assert main([
            "explore", "--iterations", "400", "--warmup", "80",
            "--seed", "1", "--plot", "--gantt", "--save", str(save),
        ]) == 0
        out = capsys.readouterr().out
        assert "iteration" in out          # trace plot
        assert "makespan" in out           # gantt header
        data = json.loads(save.read_text())
        assert data["format"] == "solution"
        # the saved solution reloads and validates
        solution = load_solution(
            save.read_text(),
            motion_detection_application(),
            epicure_architecture(2000),
        )
        solution.validate()

    def test_schedule_choice(self, capsys):
        assert main([
            "explore", "--iterations", "300", "--warmup", "60",
            "--schedule", "geometric",
        ]) == 0

    def test_trace_csv_written(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main([
            "explore", "--iterations", "200", "--warmup", "40",
            "--seed", "1", "--trace-csv", str(path),
        ]) == 0
        assert "trace saved" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert lines[0].startswith("iteration,temperature,")
        assert len(lines) == 201  # header + one row per iteration

    def test_trace_csv_with_tempering(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        assert main([
            "explore", "--strategy", "tempering", "--chains", "3",
            "--iterations", "60", "--warmup", "12",
            "--seed", "1", "--trace-csv", str(path),
        ]) == 0
        assert "trace saved" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert lines[0].startswith("iteration,temperature,")
        assert len(lines) == 61  # header + one row per round


class TestTelemetry:
    def test_explore_writes_schema_valid_stream(self, tmp_path, capsys):
        from repro.obs.telemetry import load_events, validate_events

        path = tmp_path / "tele.jsonl"
        assert main([
            "explore", "--iterations", "200", "--warmup", "40",
            "--seed", "1", "--telemetry", str(path),
        ]) == 0
        assert "telemetry written" in capsys.readouterr().out
        events = load_events(str(path))
        validate_events(events)
        kinds = {e["kind"] for e in events}
        assert {"run_header", "search_begin", "search_end",
                "run_summary"} <= kinds

    def test_summarize_renders_scoreboard(self, tmp_path, capsys):
        path = tmp_path / "tele.jsonl"
        main([
            "portfolio", "--iterations", "60", "--warmup", "12",
            "--telemetry", str(path),
        ])
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "search_end" in out
        assert "sa" in out

    def test_summarize_json_and_bad_file(self, tmp_path, capsys):
        path = tmp_path / "tele.jsonl"
        main([
            "explore", "--iterations", "120", "--warmup", "24",
            "--telemetry", str(path),
        ])
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["iterations"] == 120
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"no": "header"}\n')
        assert main(["telemetry", "summarize", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_two_sizes(self, capsys):
        assert main([
            "sweep", "--sizes", "400,2000", "--runs", "1",
            "--iterations", "500", "--warmup", "100", "--plot",
        ]) == 0
        out = capsys.readouterr().out
        assert "NCLB" in out
        assert "device size (CLBs)" in out  # plot label


class TestCompare:
    def test_tiny_budgets(self, capsys):
        assert main([
            "compare", "--iterations", "500", "--warmup", "100",
            "--population", "12", "--generations", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "adaptive SA" in out


class TestSweepParallel:
    def test_jobs_flag_and_checkpoint(self, tmp_path, capsys):
        checkpoint = tmp_path / "sweep.jsonl"
        argv = [
            "sweep", "--sizes", "400", "--runs", "2",
            "--iterations", "200", "--warmup", "40",
            "--jobs", "1", "--checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert checkpoint.exists()
        # resumes from the checkpoint: identical table, no recompute
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestPortfolio:
    def test_race_reports_winner(self, capsys):
        assert main([
            "portfolio", "--iterations", "200", "--warmup", "40",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        for kind in ("sa", "tabu", "hill_climber", "ga", "random"):
            assert kind in out


class TestBench:
    def test_list_shows_cases_and_corpus(self, capsys):
        assert main(["bench", "list", "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        assert "throughput/motion/2000@incremental" in out
        assert "scenario corpus" in out
        assert "series_parallel/24" in out

    def test_run_writes_schema_valid_results(self, tmp_path, capsys):
        from repro.bench import load_results

        out_path = tmp_path / "BENCH_quick.json"
        assert main([
            "bench", "run", "--suite", "quick",
            "--filter", "throughput/tgff/12",
            "--evals", "10", "--repeats", "1", "--bench-warmup", "0",
            "--out", str(out_path),
        ]) == 0
        document = load_results(str(out_path))  # validates the schema
        assert document["suite"] == "quick"
        assert len(document["cases"]) == 3  # full + incremental + array
        assert "tgff/12" in document["scenarios"]
        out = capsys.readouterr().out
        assert "results written to" in out
        assert "bench suite `quick`" in out

    def test_compare_gate_exit_codes(self, tmp_path, capsys):
        import copy

        from repro.bench import load_results, write_results

        out_path = tmp_path / "old.json"
        assert main([
            "bench", "run", "--suite", "quick",
            "--filter", "analysis/combinatorics",
            "--repeats", "1", "--bench-warmup", "0",
            "--out", str(out_path),
        ]) == 0
        document = load_results(str(out_path))
        slow = copy.deepcopy(document)
        slow["cases"][0]["median_s"] = (
            document["cases"][0]["median_s"] * 2 + 1.0
        )
        slow_path = tmp_path / "new.json"
        write_results(slow, str(slow_path))
        capsys.readouterr()
        # identical documents: gate passes
        assert main(["bench", "compare", str(out_path), str(out_path)]) == 0
        # injected slowdown: non-zero exit
        assert main(["bench", "compare", str(out_path), str(slow_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        import copy
        import json

        from repro.bench import load_results, write_results

        out_path = tmp_path / "old.json"
        assert main([
            "bench", "run", "--suite", "quick",
            "--filter", "analysis/combinatorics",
            "--repeats", "1", "--bench-warmup", "0",
            "--out", str(out_path),
        ]) == 0
        document = load_results(str(out_path))
        slow = copy.deepcopy(document)
        slow["cases"][0]["median_s"] = (
            document["cases"][0]["median_s"] * 2 + 1.0
        )
        slow_path = tmp_path / "new.json"
        write_results(slow, str(slow_path))
        capsys.readouterr()
        # --json prints one machine-readable document on stdout; the
        # exit code still carries the gate verdict.
        assert main([
            "bench", "compare", "--json", str(out_path), str(slow_path)
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        regressed = [
            row for row in payload["deltas"]
            if row["status"] == "regression"
        ]
        assert len(regressed) == 1
        assert regressed[0]["name"] == document["cases"][0]["name"]
        capsys.readouterr()
        assert main([
            "bench", "compare", "--json", str(out_path), str(out_path)
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestJsonOutput:
    def test_explore_json_envelope(self, capsys):
        assert main([
            "explore", "--iterations", "300", "--warmup", "60",
            "--seed", "1", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "exploration-response"
        assert document["kind"] == "single"
        assert document["best"]["evaluation"]["makespan_ms"] > 0
        assert document["request"]["schema_version"] == 1

    def test_sweep_json_envelope(self, capsys):
        assert main([
            "sweep", "--sizes", "400", "--runs", "1",
            "--iterations", "200", "--warmup", "40", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "sweep"
        assert document["summary"]["rows"][0]["n_clbs"] == 400

    def test_compare_json(self, capsys):
        assert main([
            "compare", "--iterations", "300", "--warmup", "60",
            "--population", "8", "--generations", "2", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sa_makespan_ms"] > 0
        assert "speedup" in document

    def test_info_json(self, capsys):
        assert main(["info", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["name"] == "motion_detection"
        assert document["tasks"] == 28
        assert document["deadline_ms"] == 40.0


class TestSpecWorkflow:
    def test_dump_spec_then_run_round_trips(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main([
            "explore", "--iterations", "250", "--warmup", "50",
            "--seed", "4", "--dump-spec", str(spec_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "explore", "--iterations", "250", "--warmup", "50",
            "--seed", "4", "--json",
        ]) == 0
        from_flags = json.loads(capsys.readouterr().out)
        assert main([
            "explore", "--spec", str(spec_path), "--json",
        ]) == 0
        from_spec = json.loads(capsys.readouterr().out)
        # the spec file reproduces the flag-built run bit-for-bit
        assert from_spec["best"] == from_flags["best"]
        assert from_spec["request"] == from_flags["request"]

    def test_dump_spec_to_stdout(self, capsys):
        assert main([
            "sweep", "--sizes", "300,600", "--runs", "2", "--dump-spec",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "sweep"
        assert document["sizes"] == [300, 600]

    def test_explore_runs_any_spec_kind(self, tmp_path, capsys):
        spec_path = tmp_path / "portfolio.json"
        assert main([
            "portfolio", "--iterations", "200", "--warmup", "40",
            "--seed", "3", "--dump-spec", str(spec_path),
        ]) == 0
        capsys.readouterr()
        assert main(["explore", "--spec", str(spec_path)]) == 0
        assert "winner:" in capsys.readouterr().out

    def test_bundled_examples_specs_load(self, capsys):
        import os

        spec = os.path.join(
            os.path.dirname(__file__), "..", "examples", "specs",
            "motion_quick.json",
        )
        assert main(["explore", "--spec", spec, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["best"]["evaluation"]["feasible"]


class TestServe:
    SUBMIT = [
        "serve", "submit", "--iterations", "60", "--warmup", "10",
        "--seed", "1",
    ]

    def _store(self, tmp_path):
        return str(tmp_path / "store")

    def test_submit_drain_hit_round_trip(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(self.SUBMIT + ["--store", store]) == 0
        out = capsys.readouterr().out
        assert out.startswith("queued: ")
        assert "run 'repro serve run-workers'" in out
        key = out.splitlines()[0].split(": ", 1)[1]

        assert main([
            "serve", "run-workers", "--store", store, "--workers", "1",
        ]) == 0
        assert "executed 1 job(s)" in capsys.readouterr().out

        assert main(self.SUBMIT + ["--store", store]) == 0
        out = capsys.readouterr().out
        assert out.startswith("hit: ")
        assert "cached best:" in out

        assert main(["serve", "status", "--store", store, key]) == 0
        out = capsys.readouterr().out
        assert "status:   done" in out
        assert "hits: 1" in out

        assert main(["serve", "result", "--store", store, key]) == 0
        assert "best:" in capsys.readouterr().out

    def test_submit_json_and_exact_result_bytes(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(self.SUBMIT + ["--store", store, "--json"]) == 0
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["status"] == "queued"
        assert submitted["attempts"] == 0
        key = submitted["key"]

        assert main([
            "serve", "run-workers", "--store", store, "--workers", "1",
            "--json",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["executed"] == 1

        # a cache hit carries the full envelope in the JSON document
        assert main(self.SUBMIT + ["--store", store, "--json"]) == 0
        hit = json.loads(capsys.readouterr().out)
        assert hit["status"] == "hit"
        assert hit["response"]["format"] == "exploration-response"

        # `serve result --json` prints the exact persisted bytes
        from repro.service import ResultStore

        assert main([
            "serve", "result", "--store", store, key, "--json",
        ]) == 0
        printed = capsys.readouterr().out
        persisted = ResultStore(store, create=False).response_text(key)
        assert printed == persisted + "\n"

    def test_stats_and_gc(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(self.SUBMIT + ["--store", store]) == 0
        assert main(self.SUBMIT + ["--store", store]) == 0  # inflight
        assert main([
            "serve", "run-workers", "--store", store, "--workers", "1",
        ]) == 0
        assert main(self.SUBMIT + ["--store", store]) == 0  # hit
        capsys.readouterr()

        assert main(["serve", "stats", "--store", store, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["format"] == "exploration-service-stats"
        assert stats["executions"] == 1
        assert stats["hits"] == 1
        assert stats["records"]["done"] == 1

        assert main(["serve", "stats", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "executions: 1" in out and "cache hits: 1" in out

        assert main([
            "serve", "gc", "--store", store, "--done-older-than", "0",
        ]) == 0
        assert "done" in capsys.readouterr().out

    def test_result_before_completion_exits_2(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(self.SUBMIT + ["--store", store, "--json"]) == 0
        key = json.loads(capsys.readouterr().out)["key"]
        assert main(["serve", "result", "--store", store, key]) == 2
        assert "no result" in capsys.readouterr().err

    def test_missing_store_exits_2(self, tmp_path, capsys):
        absent = str(tmp_path / "absent")
        assert main([
            "serve", "stats", "--store", absent, "--json",
        ]) == 2
        assert "no exploration store" in capsys.readouterr().err

    def test_submit_telemetry_stream(self, tmp_path, capsys):
        from repro.obs.telemetry import load_events, summarize_events

        store = self._store(tmp_path)
        stream = str(tmp_path / "serve.jsonl")
        assert main(self.SUBMIT + [
            "--store", store, "--telemetry", stream,
        ]) == 0
        assert "telemetry written" in capsys.readouterr().out
        summary = summarize_events(load_events(stream))
        assert summary["counters"]["cache_miss"] == 1
        assert "store_lookup_s" in summary["timers"]
        capsys.readouterr()
        assert main(["telemetry", "summarize", stream]) == 0
        assert "cache_miss" in capsys.readouterr().out


class TestValidationExitCodes:
    def test_missing_spec_file_exits_2(self, capsys):
        assert main(["explore", "--spec", "/nonexistent.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_key_in_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 1, "iters": 5}))
        assert main(["explore", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "iters" in err and "accepted keys" in err

    def test_invalid_application_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "app.json"
        path.write_text("{not json")
        assert main(["explore", "--application", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_stale_schema_version_exits_2(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": 99}))
        assert main(["explore", "--spec", str(path)]) == 2
        assert "newer" in capsys.readouterr().err


class TestParser:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBudgetFlagsAndDeadline:
    """The PR's serving flags: --time-limit-s / --stall-limit /
    --deadline-s, including --dump-spec round trips."""

    def test_dump_spec_round_trips_budget_limits(self, tmp_path, capsys):
        spec = str(tmp_path / "spec.json")
        assert main([
            "explore", "--iterations", "80", "--warmup", "10",
            "--time-limit-s", "30", "--stall-limit", "500",
            "--dump-spec", spec,
        ]) == 0
        capsys.readouterr()
        document = json.loads(open(spec).read())
        assert document["budget"]["time_limit_s"] == 30.0
        assert document["budget"]["stall_limit"] == 500
        # the dumped spec loads and runs unchanged
        assert main(["explore", "--spec", spec, "--json"]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["results"][0]["iterations_run"] <= 80

    def test_serve_submit_dump_spec_has_budget_limits(
        self, tmp_path, capsys
    ):
        assert main([
            "serve", "submit", "--store", str(tmp_path / "store"),
            "--iterations", "60", "--warmup", "10",
            "--time-limit-s", "5", "--dump-spec",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["budget"]["time_limit_s"] == 5.0
        assert document["budget"]["stall_limit"] is None

    def test_time_limit_caps_a_long_run(self, capsys):
        assert main([
            "explore", "--iterations", "10000000", "--warmup", "0",
            "--time-limit-s", "0.2", "--json",
        ]) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["results"][0]["iterations_run"] < 10000000

    def test_deadline_returns_partial_envelope(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "serve", "submit", "--store", store,
            "--iterations", "200000", "--warmup", "0",
            "--deadline-s", "0.3", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "partial"
        assert document["record_status"] == "pending"
        assert document["response"]["summary"]["partial"] is True
        assert document["response"]["best"]["cost"] > 0

        # the full job is still queued; workers complete it as usual
        assert main([
            "serve", "run-workers", "--store", store, "--workers", "1",
        ]) == 0
        assert "executed 1 job(s)" in capsys.readouterr().out

    def test_deadline_hit_is_served_instantly(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        submit = [
            "serve", "submit", "--store", store,
            "--iterations", "60", "--warmup", "10", "--seed", "1",
        ]
        assert main(submit) == 0
        assert main([
            "serve", "run-workers", "--store", store, "--workers", "1",
        ]) == 0
        capsys.readouterr()
        assert main(submit + ["--deadline-s", "0.5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("hit: ")

    def test_deadline_partial_human_output(self, tmp_path, capsys):
        assert main([
            "serve", "submit", "--store", str(tmp_path / "store"),
            "--iterations", "200000", "--warmup", "0",
            "--deadline-s", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("partial: ")
        assert "partial best:" in out
