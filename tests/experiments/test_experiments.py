"""Integration tests for the experiment harness (small budgets).

These do not reproduce the paper's statistics (the benches do); they
check the harness runs end to end and reports internally consistent
numbers.
"""

import pytest

from repro.analysis.sweep import smallest_feasible_device
from repro.experiments.ablations import (
    SCHEDULE_ABLATION_HEADER,
    run_bus_ablation,
    run_impl_ablation,
    run_schedule_ablation,
)
from repro.experiments.comparison import run_comparison
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import format_fig3_table, run_fig3


class TestFig2:
    def test_short_run_structure(self):
        result = run_fig2(iterations=1500, warmup_iterations=400, seed=2)
        assert len(result.trace) == 1500
        lo, hi = result.warmup_spread()
        assert hi > lo  # the infinite-T phase really wanders
        assert result.final_evaluation.feasible
        series = result.series()
        assert series[0][0] == 1 and series[-1][0] == 1500
        text = result.format_summary()
        assert "frozen solution" in text

    def test_full_run_meets_constraint(self):
        result = run_fig2(iterations=6000, warmup_iterations=1000, seed=7)
        assert result.final_evaluation.makespan_ms < result.deadline_ms
        assert result.iterations_to_deadline() is not None
        assert result.final_evaluation.num_contexts >= 1


class TestFig3:
    def test_tiny_sweep(self):
        rows = run_fig3(
            sizes=(400, 2000), runs=2, iterations=1200, warmup_iterations=300
        )
        assert [r.n_clbs for r in rows] == [400, 2000]
        for row in rows:
            assert row.execution_ms > 0
            assert row.num_contexts >= 0
            assert 0.0 <= row.feasible_fraction <= 1.0
        text = format_fig3_table(rows)
        assert "NCLB" in text

    def test_smallest_feasible_device_helper(self):
        rows = run_fig3(sizes=(2000,), runs=1)  # converged default budget
        assert smallest_feasible_device(rows) == 2000


class TestComparison:
    def test_small_budgets(self):
        result = run_comparison(
            sa_iterations=1500,
            sa_warmup=300,
            ga_population=16,
            ga_generations=3,
            seed=5,
        )
        assert result.sa_makespan_ms > 0
        assert result.ga_makespan_ms > 0
        assert result.ga_evaluations > 16
        text = result.format_table()
        assert "adaptive SA" in text and "GA" in text


class TestParetoFront:
    def test_points_and_formatting(self):
        from repro.experiments.pareto import (
            format_pareto_table,
            run_pareto_front,
        )

        points = run_pareto_front(
            deadlines_ms=(80.0,), iterations=1200, warmup=300
        )
        assert len(points) == 1
        assert points[0].deadline_ms == 80.0
        assert points[0].monetary_cost >= 1.0
        text = format_pareto_table(points)
        assert "deadline" in text


class TestAblations:
    def test_schedule_ablation_rows(self):
        rows = run_schedule_ablation(
            iterations=800, warmup=200, runs=2, seed0=1
        )
        methods = [r.method for r in rows]
        assert methods == [
            "lam", "modified_lam", "geometric", "hill_climb", "random_search",
        ]
        for row in rows:
            assert row.makespan.n == 2
            assert row.format_row()
        assert "mean" in SCHEDULE_ABLATION_HEADER

    def test_impl_ablation_modes(self):
        results = run_impl_ablation(iterations=800, warmup=200, runs=2)
        assert set(results) == {"free", "smallest", "fastest"}

    def test_bus_ablation_policies(self):
        results = run_bus_ablation(iterations=600, warmup=150, runs=2)
        assert set(results) == {"ordered", "edge"}
