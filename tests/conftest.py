"""Shared fixtures: a small handcrafted application and the benchmark."""

from __future__ import annotations

import random

import pytest

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.mapping.solution import Solution, random_initial_solution
from repro.model.application import Application
from repro.model.motion import motion_detection_application
from repro.model.task import Implementation, Task


def make_impls(*points):
    """Shorthand: ``make_impls((clbs, ms), ...)``."""
    return tuple(
        Implementation(clbs=c, time_ms=t, name=f"v{i}")
        for i, (c, t) in enumerate(points)
    )


@pytest.fixture
def small_app() -> Application:
    """A 6-task diamond-ish app: 0 -> (1, 2) -> 3 -> 4 -> 5.

    Tasks 1, 2, 3 are hardware-capable with two implementations each;
    0, 4, 5 are software-only.  Data volumes are non-trivial so bus
    transfers matter.
    """
    app = Application("small")
    app.add_task(Task(0, "load", "IO", sw_time_ms=2.0))
    app.add_task(Task(1, "filter_a", "FIR", 6.0, make_impls((100, 1.0), (200, 0.5))))
    app.add_task(Task(2, "filter_b", "FIR", 4.0, make_impls((80, 0.8), (160, 0.4))))
    app.add_task(Task(3, "merge", "MAG", 5.0, make_impls((120, 1.2), (240, 0.6))))
    app.add_task(Task(4, "classify", "CTRL", sw_time_ms=3.0))
    app.add_task(Task(5, "emit", "IO", sw_time_ms=1.0))
    app.add_dependency(0, 1, data_kbytes=10.0)
    app.add_dependency(0, 2, data_kbytes=10.0)
    app.add_dependency(1, 3, data_kbytes=5.0)
    app.add_dependency(2, 3, data_kbytes=5.0)
    app.add_dependency(3, 4, data_kbytes=2.0)
    app.add_dependency(4, 5, data_kbytes=1.0)
    app.validate()
    return app


@pytest.fixture
def small_arch() -> Architecture:
    """One processor + one 300-CLB device (capacity pressure on purpose:
    two 100+ CLB tasks fit, three do not always)."""
    arch = Architecture("small_arch", bus=Bus(rate_kbytes_per_ms=10.0))
    arch.add_resource(Processor("cpu"))
    arch.add_resource(
        ReconfigurableCircuit("fpga", n_clbs=300, reconfig_ms_per_clb=0.01)
    )
    arch.validate()
    return arch


@pytest.fixture
def small_solution(small_app, small_arch) -> Solution:
    """All tasks on the processor, in index order."""
    solution = Solution(small_app, small_arch)
    for t in small_app.topological_order():
        solution.assign_to_processor(t, "cpu")
    solution.validate()
    return solution


@pytest.fixture(scope="session")
def motion_app():
    return motion_detection_application()


@pytest.fixture
def epicure():
    return epicure_architecture(n_clbs=2000)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
