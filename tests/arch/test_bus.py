"""Tests for the shared bus model."""

import pytest

from repro.arch.bus import Bus
from repro.errors import ArchitectureError


class TestBus:
    def test_transfer_time(self):
        bus = Bus(rate_kbytes_per_ms=50.0)
        assert bus.transfer_time_ms(100.0) == pytest.approx(2.0)

    def test_zero_data_is_free_even_with_latency(self):
        bus = Bus(rate_kbytes_per_ms=50.0, latency_ms=0.5)
        assert bus.transfer_time_ms(0.0) == 0.0

    def test_latency_added(self):
        bus = Bus(rate_kbytes_per_ms=10.0, latency_ms=0.25)
        assert bus.transfer_time_ms(10.0) == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            Bus(name="")
        with pytest.raises(ArchitectureError):
            Bus(rate_kbytes_per_ms=0.0)
        with pytest.raises(ArchitectureError):
            Bus(latency_ms=-0.1)
        bus = Bus()
        with pytest.raises(ArchitectureError):
            bus.transfer_time_ms(-1.0)
