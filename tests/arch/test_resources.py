"""Tests for Processor / Asic / ReconfigurableCircuit behavior."""

import pytest

from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import CONFIG_NODE, ReconfigurableCircuit
from repro.arch.resource import OrderKind
from repro.errors import ArchitectureError, ModelError
from repro.mapping.solution import Solution


class TestProcessor:
    def test_order_kind(self):
        assert Processor("p").order_kind is OrderKind.TOTAL

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            Processor("")
        with pytest.raises(ArchitectureError):
            Processor("p", speed_factor=0)
        with pytest.raises(ArchitectureError):
            Processor("p", monetary_cost=-1)

    def test_execution_time_scales(self, small_app, small_arch):
        solution = Solution(small_app, small_arch)
        cpu = small_arch.resource("cpu")
        assert cpu.execution_time_ms(solution, 1) == pytest.approx(6.0)
        fast = Processor("fast", speed_factor=2.0)
        assert fast.execution_time_ms(solution, 1) == pytest.approx(3.0)

    def test_sequentialization_edges_chain_the_order(
        self, small_app, small_arch, small_solution
    ):
        cpu = small_arch.resource("cpu")
        edges = cpu.sequentialization_edges(small_solution)
        order = small_solution.software_order("cpu")
        assert edges == [(a, b, 0.0) for a, b in zip(order, order[1:])]


class TestAsic:
    def test_order_kind_and_no_edges(self, small_app, small_arch):
        asic = Asic("accel")
        assert asic.order_kind is OrderKind.PARTIAL
        solution = Solution(small_app, small_arch)
        assert asic.sequentialization_edges(solution) == []

    def test_execution_time_uses_selected_impl(self, small_app, small_arch):
        small_arch.add_resource(Asic("accel"))
        solution = Solution(small_app, small_arch)
        asic = small_arch.resource("accel")
        assert asic.execution_time_ms(solution, 1) == pytest.approx(1.0)
        solution.set_implementation_choice(1, 1)
        assert asic.execution_time_ms(solution, 1) == pytest.approx(0.5)

    def test_software_only_task_rejected(self, small_app, small_arch):
        asic = Asic("accel")
        solution = Solution(small_app, small_arch)
        with pytest.raises(ModelError):
            asic.execution_time_ms(solution, 0)


class TestReconfigurableCircuit:
    def test_validation(self):
        with pytest.raises(ArchitectureError):
            ReconfigurableCircuit("rc", n_clbs=0)
        with pytest.raises(ArchitectureError):
            ReconfigurableCircuit("rc", n_clbs=10, reconfig_ms_per_clb=-1)

    def test_reconfiguration_time(self):
        rc = ReconfigurableCircuit("rc", n_clbs=1000, reconfig_ms_per_clb=0.0225)
        assert rc.reconfiguration_time_ms(2000) == pytest.approx(45.0)
        with pytest.raises(ArchitectureError):
            rc.reconfiguration_time_ms(-1)

    def test_fits(self):
        rc = ReconfigurableCircuit("rc", n_clbs=100)
        assert rc.fits(60, 40)
        assert not rc.fits(61, 40)

    def test_order_kind(self):
        rc = ReconfigurableCircuit("rc", n_clbs=100)
        assert rc.order_kind is OrderKind.GTLP

    def test_virtual_nodes_empty_when_unused(
        self, small_app, small_arch, small_solution
    ):
        fpga = small_arch.resource("fpga")
        assert fpga.virtual_nodes(small_solution) == []
        assert fpga.sequentialization_edges(small_solution) == []

    def test_config_node_and_context_edges(self, small_app, small_arch):
        fpga = small_arch.resource("fpga")
        solution = Solution(small_app, small_arch)
        for t in (0, 4, 5):
            solution.assign_to_processor(t, "cpu")
        solution.spawn_context(1, "fpga")      # context 0: task 1 (100 CLBs)
        solution.assign_to_context(2, "fpga", 0)  # joins: 100+80=180 <= 300
        solution.spawn_context(3, "fpga")      # context 1: task 3 (120 CLBs)

        nodes = fpga.virtual_nodes(solution)
        assert nodes == [((CONFIG_NODE, "fpga"), pytest.approx(1.8))]

        edges = fpga.sequentialization_edges(solution)
        config_edges = [e for e in edges if e[0] == (CONFIG_NODE, "fpga")]
        # both tasks of context 0 are initial (their preds are outside)
        assert {e[1] for e in config_edges} == {1, 2}
        ctx_edges = [e for e in edges if e[0] in (1, 2)]
        # terminal {1,2} -> initial {3}, weight = tR * 120 CLBs = 1.2
        assert {(e[0], e[1]) for e in ctx_edges} == {(1, 3), (2, 3)}
        for e in ctx_edges:
            assert e[2] == pytest.approx(1.2)

    def test_reconfig_reporting(self, small_app, small_arch):
        fpga = small_arch.resource("fpga")
        solution = Solution(small_app, small_arch)
        for t in (0, 4, 5):
            solution.assign_to_processor(t, "cpu")
        solution.spawn_context(1, "fpga")
        solution.spawn_context(3, "fpga")
        solution.assign_to_processor(2, "cpu")
        assert fpga.initial_reconfiguration_ms(solution) == pytest.approx(1.0)
        assert fpga.dynamic_reconfiguration_ms(solution) == pytest.approx(1.2)
