"""Tests for the Architecture container."""

import pytest

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ArchitectureError


class TestContainer:
    def test_add_and_lookup(self):
        arch = Architecture("a")
        proc = arch.add_resource(Processor("cpu"))
        assert arch.resource("cpu") is proc
        assert "cpu" in arch
        assert len(arch) == 1

    def test_duplicate_name_rejected(self):
        arch = Architecture("a")
        arch.add_resource(Processor("cpu"))
        with pytest.raises(ArchitectureError):
            arch.add_resource(Asic("cpu"))

    def test_remove(self):
        arch = Architecture("a")
        arch.add_resource(Processor("cpu"))
        removed = arch.remove_resource("cpu")
        assert removed.name == "cpu"
        with pytest.raises(ArchitectureError):
            arch.remove_resource("cpu")

    def test_kind_queries(self):
        arch = Architecture("a")
        arch.add_resource(Processor("cpu"))
        arch.add_resource(ReconfigurableCircuit("fpga", n_clbs=100))
        arch.add_resource(Asic("asic"))
        assert [p.name for p in arch.processors()] == ["cpu"]
        assert [r.name for r in arch.reconfigurable_circuits()] == ["fpga"]
        assert [a.name for a in arch.asics()] == ["asic"]

    def test_fresh_name(self):
        arch = Architecture("a")
        arch.add_resource(Processor("proc_1"))
        name = arch.fresh_name("proc")
        assert name not in arch
        arch.add_resource(Processor(name))
        assert arch.fresh_name("proc") not in (name, "proc_1")

    def test_total_cost(self):
        arch = Architecture("a")
        arch.add_resource(Processor("cpu", monetary_cost=1.5))
        arch.add_resource(ReconfigurableCircuit("f", n_clbs=10, monetary_cost=2.5))
        assert arch.total_monetary_cost() == pytest.approx(4.0)

    def test_validation_needs_processor(self):
        arch = Architecture("a")
        arch.add_resource(ReconfigurableCircuit("f", n_clbs=10))
        with pytest.raises(ArchitectureError):
            arch.validate()

    def test_empty_name_rejected(self):
        with pytest.raises(ArchitectureError):
            Architecture("")


class TestEpicure:
    def test_default_platform(self):
        arch = epicure_architecture()
        assert len(arch.processors()) == 1
        rc = arch.reconfigurable_circuits()[0]
        assert rc.n_clbs == 2000
        assert rc.reconfig_ms_per_clb == pytest.approx(0.0225)

    def test_custom_size(self):
        arch = epicure_architecture(n_clbs=800)
        assert arch.reconfigurable_circuits()[0].n_clbs == 800
