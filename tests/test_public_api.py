"""Public-surface tests: smoke plus the pinned API snapshot.

The snapshot lists are the contract: a symbol disappearing from
``repro`` or ``repro.api`` fails here *by name*, so breakage is a
deliberate, reviewed event (update the list in the same commit) rather
than an accident.
"""

import repro
import repro.api

#: The pinned public surface of the top-level package.
REPRO_SURFACE = sorted([
    # errors
    "ReproError", "GraphError", "CycleError", "ModelError",
    "ArchitectureError", "CapacityError", "MappingError", "MoveError",
    "InfeasibleMoveError", "ConfigurationError", "TelemetryError",
    "ServiceError",
    # graph
    "Dag", "PathCountClosure", "MaxPlusClosure",
    # model
    "Application", "Implementation", "Task",
    "SdfActor", "SdfChannel", "SdfGraph",
    "GeneratorConfig", "random_application",
    "motion_detection_application", "MOTION_TOTAL_SW_TIME_MS",
    # architecture
    "Architecture", "Asic", "Bus", "Processor", "ReconfigurableCircuit",
    "epicure_architecture",
    # mapping
    "Evaluation", "Evaluator", "MakespanCost", "Schedule", "Solution",
    "SystemCost", "extract_schedule", "random_initial_solution",
    "render_gantt", "ExecutionSimulator", "SimulationResult", "simulate",
    "ENGINES", "ArrayEngine", "EvaluationEngine", "FullRebuildEngine",
    "IncrementalEngine", "make_engine",
    # annealing
    "AnnealerConfig", "DesignSpaceExplorer", "ExplorationResult",
    "GeometricSchedule", "LamDelosmeSchedule", "ModifiedLamSchedule",
    "MoveGenerator", "SimulatedAnnealing",
    # search subsystem
    "SearchStrategy", "SearchBudget", "SearchResult",
    "StrategySpec", "InstanceSpec", "SearchJob",
    "run_search_jobs", "run_portfolio", "derive_seeds",
    # observability
    "Telemetry",
    # exploration service
    "ExplorationService", "ResultStore", "run_workers",
    # declarative public API
    "api", "ApplicationSpec", "ArchitectureSpec", "BudgetSpec",
    "EngineSpec", "ExplorationRequest", "ExplorationResponse",
    "explore", "load_request",
    "__version__",
])

#: The pinned public surface of the spec/façade layer.
API_SURFACE = sorted([
    "SCHEMA_VERSION",
    "APPLICATION_KINDS", "ARCHITECTURE_KINDS", "REQUEST_KINDS",
    "ApplicationSpec", "ArchitectureSpec", "StrategySpec",
    "BudgetSpec", "EngineSpec",
    "ExplorationRequest", "ExplorationResponse", "load_request",
    "BUILTIN_APPLICATIONS", "BUILTIN_ARCHITECTURES",
    "ResolvedProblem", "ResolvedRequest",
    "resolve_application", "resolve_architecture", "resolve_request",
    "resolve_strategy",
    "environment_stamp", "evaluation_to_dict", "explore",
    "load_response",
])


class TestApiSurfaceSnapshot:
    def test_repro_surface_is_pinned(self):
        assert sorted(repro.__all__) == REPRO_SURFACE

    def test_repro_api_surface_is_pinned(self):
        assert sorted(repro.api.__all__) == API_SURFACE

    def test_all_api_exports_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_surface(self):
        app = repro.motion_detection_application()
        arch = repro.epicure_architecture(n_clbs=2000)
        explorer = repro.DesignSpaceExplorer(
            app, arch, iterations=300, warmup_iterations=60, seed=0
        )
        result = explorer.run()
        assert result.best_evaluation.feasible

    def test_spec_quickstart_surface(self):
        request = repro.ExplorationRequest(
            budget=repro.BudgetSpec(iterations=300, warmup_iterations=60),
            seed=0,
        )
        response = repro.explore(request)
        assert response.best["evaluation"]["feasible"]

    def test_errors_are_catchable_via_base(self):
        try:
            repro.Bus(rate_kbytes_per_ms=-1)
        except repro.ReproError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ReproError")
