"""Smoke tests for the public package surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_surface(self):
        app = repro.motion_detection_application()
        arch = repro.epicure_architecture(n_clbs=2000)
        explorer = repro.DesignSpaceExplorer(
            app, arch, iterations=300, warmup_iterations=60, seed=0
        )
        result = explorer.run()
        assert result.best_evaluation.feasible

    def test_errors_are_catchable_via_base(self):
        try:
            repro.Bus(rate_kbytes_per_ms=-1)
        except repro.ReproError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ReproError")
