"""Round-trip tests for JSON serialization."""

import json
import random

import pytest

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.errors import ConfigurationError, MappingError
from repro.io import (
    dump_application,
    dump_architecture,
    dump_solution,
    load_application,
    load_architecture,
    load_solution,
)
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.motion import motion_detection_application


class TestApplicationRoundTrip:
    def test_exact_roundtrip(self, motion_app):
        text = dump_application(motion_app)
        again = load_application(text)
        assert again.name == motion_app.name
        assert len(again) == len(motion_app)
        for task in motion_app.tasks():
            other = again.task(task.index)
            assert other.name == task.name
            assert other.functionality == task.functionality
            assert other.sw_time_ms == task.sw_time_ms
            assert other.implementations == task.implementations
        assert sorted(again.dependencies()) == sorted(motion_app.dependencies())

    def test_small_app(self, small_app):
        again = load_application(dump_application(small_app))
        assert sorted(again.dependencies()) == sorted(small_app.dependencies())

    def test_wrong_document_kind(self, motion_app, epicure):
        arch_doc = dump_architecture(epicure)
        with pytest.raises(ConfigurationError):
            load_application(arch_doc)

    def test_bad_version(self, motion_app):
        data = json.loads(dump_application(motion_app))
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            load_application(json.dumps(data))


class TestArchitectureRoundTrip:
    def test_epicure(self, epicure):
        again = load_architecture(dump_architecture(epicure))
        assert again.name == epicure.name
        assert again.bus.rate_kbytes_per_ms == epicure.bus.rate_kbytes_per_ms
        rc = again.reconfigurable_circuits()[0]
        assert rc.n_clbs == 2000
        assert rc.reconfig_ms_per_clb == pytest.approx(0.0225)

    def test_all_resource_kinds(self, small_arch):
        small_arch.add_resource(Asic("accel", monetary_cost=3.0))
        again = load_architecture(dump_architecture(small_arch))
        assert {r.name for r in again.resources()} == {"cpu", "fpga", "accel"}
        assert again.resource("accel").monetary_cost == 3.0

    def test_unknown_kind_rejected(self, epicure):
        data = json.loads(dump_architecture(epicure))
        data["resources"][0]["kind"] = "quantum"
        with pytest.raises(ConfigurationError):
            load_architecture(json.dumps(data))


class TestSolutionRoundTrip:
    def test_roundtrip_preserves_evaluation(self, motion_app):
        arch = epicure_architecture(2000)
        solution = random_initial_solution(
            motion_app, arch, random.Random(4)
        )
        evaluator = Evaluator(motion_app, arch)
        original = evaluator.evaluate(solution)

        text = dump_solution(solution)
        arch2 = epicure_architecture(2000)
        evaluator2 = Evaluator(motion_app, arch2)
        restored = load_solution(text, motion_app, arch2)
        again = evaluator2.evaluate(restored)

        assert again.makespan_ms == pytest.approx(original.makespan_ms)
        assert again.num_contexts == original.num_contexts
        assert sorted(restored.hardware_tasks()) == sorted(
            solution.hardware_tasks()
        )

    def test_application_mismatch_rejected(self, motion_app, small_app):
        arch = epicure_architecture(2000)
        solution = random_initial_solution(
            motion_app, arch, random.Random(1)
        )
        text = dump_solution(solution)
        with pytest.raises(MappingError):
            load_solution(text, small_app, arch)
