"""Round-trip tests for JSON serialization."""

import json
import random

import pytest

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.errors import ConfigurationError, MappingError
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.io import (
    ProblemInstance,
    dump_application,
    dump_architecture,
    dump_instance,
    dump_solution,
    instance_to_dict,
    load_application,
    load_architecture,
    load_instance,
    load_solution,
)
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.motion import motion_detection_application


class TestApplicationRoundTrip:
    def test_exact_roundtrip(self, motion_app):
        text = dump_application(motion_app)
        again = load_application(text)
        assert again.name == motion_app.name
        assert len(again) == len(motion_app)
        for task in motion_app.tasks():
            other = again.task(task.index)
            assert other.name == task.name
            assert other.functionality == task.functionality
            assert other.sw_time_ms == task.sw_time_ms
            assert other.implementations == task.implementations
        assert sorted(again.dependencies()) == sorted(motion_app.dependencies())

    def test_small_app(self, small_app):
        again = load_application(dump_application(small_app))
        assert sorted(again.dependencies()) == sorted(small_app.dependencies())

    def test_wrong_document_kind(self, motion_app, epicure):
        arch_doc = dump_architecture(epicure)
        with pytest.raises(ConfigurationError):
            load_application(arch_doc)

    def test_bad_version(self, motion_app):
        data = json.loads(dump_application(motion_app))
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            load_application(json.dumps(data))


class TestArchitectureRoundTrip:
    def test_epicure(self, epicure):
        again = load_architecture(dump_architecture(epicure))
        assert again.name == epicure.name
        assert again.bus.rate_kbytes_per_ms == epicure.bus.rate_kbytes_per_ms
        rc = again.reconfigurable_circuits()[0]
        assert rc.n_clbs == 2000
        assert rc.reconfig_ms_per_clb == pytest.approx(0.0225)

    def test_all_resource_kinds(self, small_arch):
        small_arch.add_resource(Asic("accel", monetary_cost=3.0))
        again = load_architecture(dump_architecture(small_arch))
        assert {r.name for r in again.resources()} == {"cpu", "fpga", "accel"}
        assert again.resource("accel").monetary_cost == 3.0

    def test_unknown_kind_rejected(self, epicure):
        data = json.loads(dump_architecture(epicure))
        data["resources"][0]["kind"] = "quantum"
        with pytest.raises(ConfigurationError):
            load_architecture(json.dumps(data))


class TestInstanceRoundTrip:
    def test_exact_roundtrip(self, motion_app, epicure):
        instance = ProblemInstance(
            application=motion_app,
            architecture=epicure,
            deadline_ms=40.0,
            name="motion@epicure",
            metadata={"family": "motion", "seed": 0, "params": {"n_clbs": 2000}},
        )
        again = load_instance(dump_instance(instance))
        assert again.name == "motion@epicure"
        assert again.deadline_ms == 40.0
        assert again.metadata == instance.metadata
        # the bundled sub-documents round-trip exactly
        assert instance_to_dict(again) == instance_to_dict(instance)
        assert sorted(again.application.dependencies()) == sorted(
            motion_app.dependencies()
        )
        assert {r.name for r in again.architecture.resources()} == {
            r.name for r in epicure.resources()
        }

    def test_optional_fields_default(self, small_app, small_arch):
        instance = ProblemInstance(small_app, small_arch)
        again = load_instance(dump_instance(instance))
        assert again.deadline_ms is None
        assert again.metadata == {}
        assert again.name == small_app.name

    def test_partial_reconfiguration_flag_survives(self, small_app):
        arch = Architecture("full_reconfig")
        from repro.arch.processor import Processor

        arch.add_resource(Processor("cpu"))
        arch.add_resource(
            ReconfigurableCircuit(
                "fpga", n_clbs=500, partial_reconfiguration=False
            )
        )
        instance = ProblemInstance(small_app, arch)
        again = load_instance(dump_instance(instance))
        rc = again.architecture.reconfigurable_circuits()[0]
        assert rc.partial_reconfiguration is False

    def test_wrong_document_kind(self, motion_app):
        with pytest.raises(ConfigurationError):
            load_instance(dump_application(motion_app))


class TestSolutionRoundTrip:
    def test_roundtrip_preserves_evaluation(self, motion_app):
        arch = epicure_architecture(2000)
        solution = random_initial_solution(
            motion_app, arch, random.Random(4)
        )
        evaluator = Evaluator(motion_app, arch)
        original = evaluator.evaluate(solution)

        text = dump_solution(solution)
        arch2 = epicure_architecture(2000)
        evaluator2 = Evaluator(motion_app, arch2)
        restored = load_solution(text, motion_app, arch2)
        again = evaluator2.evaluate(restored)

        assert again.makespan_ms == pytest.approx(original.makespan_ms)
        assert again.num_contexts == original.num_contexts
        assert sorted(restored.hardware_tasks()) == sorted(
            solution.hardware_tasks()
        )

    def test_application_mismatch_rejected(self, motion_app, small_app):
        arch = epicure_architecture(2000)
        solution = random_initial_solution(
            motion_app, arch, random.Random(1)
        )
        text = dump_solution(solution)
        with pytest.raises(MappingError):
            load_solution(text, small_app, arch)
