"""Spec-layer tests: golden round trips, defaulting, loud rejection."""

import json
import os

import pytest

from repro.api.specs import (
    SCHEMA_VERSION,
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
    load_request,
)
from repro.errors import ConfigurationError

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
GOLDEN = sorted(
    name for name in os.listdir(FIXTURES) if name.endswith(".json")
)


class TestGoldenFixtures:
    """One fixture per spec kind; the files are the canonical dumps."""

    @pytest.mark.parametrize("name", GOLDEN)
    def test_round_trip_is_byte_stable(self, name):
        with open(os.path.join(FIXTURES, name)) as handle:
            text = handle.read()
        request = ExplorationRequest.from_json(text)
        assert request.to_json() + "\n" == text

    @pytest.mark.parametrize("name", GOLDEN)
    def test_fixture_validates(self, name):
        request = load_request(os.path.join(FIXTURES, name))
        request.validate()

    def test_fixtures_cover_every_spec_and_request_kind(self):
        requests = [
            load_request(os.path.join(FIXTURES, name)) for name in GOLDEN
        ]
        assert {r.application.kind for r in requests} == {
            "builtin", "generated", "bundled", "inline",
        }
        assert {r.kind for r in requests} == {
            "single", "batch", "portfolio", "sweep",
        }


class TestSchemaVersion:
    def test_current_version_is_pinned(self):
        # Bumping SCHEMA_VERSION is an API event: regenerate the golden
        # fixtures and extend the migration notes when this moves.
        assert SCHEMA_VERSION == 1

    def test_missing_version_rejected(self):
        with pytest.raises(ConfigurationError, match="schema_version"):
            ExplorationRequest.from_dict({"kind": "single"})

    def test_newer_version_rejected(self):
        document = ExplorationRequest().to_dict()
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="newer"):
            ExplorationRequest.from_dict(document)

    def test_non_integer_version_rejected(self):
        with pytest.raises(ConfigurationError, match="positive integer"):
            ExplorationRequest.from_dict({"schema_version": "1"})


class TestDefaulting:
    def test_minimal_document_fills_defaults(self):
        request = ExplorationRequest.from_dict(
            {"schema_version": SCHEMA_VERSION}
        )
        assert request.kind == "single"
        assert request.application.kind == "builtin"
        assert request.application.name == "motion"
        assert request.strategy.kind == "sa"
        assert request.engine.kind == "incremental"
        assert request.architecture is None

    def test_partial_nested_documents_default(self):
        request = ExplorationRequest.from_dict({
            "schema_version": SCHEMA_VERSION,
            "kind": "batch",
            "runs": 3,
            "budget": {"iterations": 500},
            "architecture": {"n_clbs": 800},
        })
        assert request.budget.warmup_iterations is None
        assert request.architecture.kind == "builtin"
        assert request.architecture.n_clbs == 800

    def test_from_json_equals_from_dict(self):
        text = ExplorationRequest(seed=3).to_json()
        assert (
            ExplorationRequest.from_json(text)
            == ExplorationRequest.from_dict(json.loads(text))
        )


class TestUnknownKeyRejection:
    def test_top_level(self):
        with pytest.raises(ConfigurationError) as err:
            ExplorationRequest.from_dict({
                "schema_version": SCHEMA_VERSION, "iterations": 100,
            })
        assert "iterations" in str(err.value)
        assert "accepted keys" in str(err.value)

    def test_nested_application(self):
        with pytest.raises(ConfigurationError, match="num_tasks"):
            ExplorationRequest.from_dict({
                "schema_version": SCHEMA_VERSION,
                "application": {"kind": "builtin", "num_tasks": 5},
            })

    def test_nested_budget(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            ExplorationRequest.from_dict({
                "schema_version": SCHEMA_VERSION,
                "budget": {"warmup": 100},
            })

    def test_generator_knobs(self):
        spec = ApplicationSpec(
            kind="generated", generator={"n_tasks": 10}
        )
        with pytest.raises(ConfigurationError, match="n_tasks"):
            spec.validate()

    def test_strategy_options(self):
        with pytest.raises(ConfigurationError, match="iteration"):
            StrategySpec("sa", {"iteration": 100}).validate()


class TestStrategySpec:
    def test_reserved_engine_option_points_at_engine_spec(self):
        with pytest.raises(ConfigurationError, match="EngineSpec"):
            StrategySpec("sa", {"engine": "full"}).validate()

    def test_reserved_catalog_option_points_at_field(self):
        with pytest.raises(ConfigurationError, match="StrategySpec.catalog"):
            StrategySpec("sa", {"catalog": []}).validate()

    def test_non_json_options_rejected(self):
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            StrategySpec("sa", {"schedule_kwargs": object()}).validate()

    def test_unknown_cost_kind(self):
        with pytest.raises(ConfigurationError, match="cost kind"):
            StrategySpec("sa", cost={"kind": "latency"}).validate()

    def test_cost_on_non_annealer_rejected(self):
        with pytest.raises(ConfigurationError, match="'sa' and 'tempering'"):
            StrategySpec("ga", cost={"kind": "makespan"}).validate()

    def test_cost_on_tempering_accepted(self):
        StrategySpec("tempering", cost={"kind": "makespan"}).validate()

    def test_catalog_on_tempering_rejected(self):
        # chains share one Architecture object; architecture-exploration
        # moves would cross-contaminate them
        with pytest.raises(ConfigurationError, match="'sa' strategy only"):
            StrategySpec(
                "tempering", catalog=({"kind": "processor"},)
            ).validate()

    def test_unknown_catalog_kind(self):
        with pytest.raises(ConfigurationError, match="catalog resource"):
            StrategySpec("sa", catalog=({"kind": "gpu"},)).validate()


class TestKindValidation:
    def test_unknown_request_kind(self):
        with pytest.raises(ConfigurationError, match="request kind"):
            ExplorationRequest(kind="grid").validate()

    def test_unknown_application_kind(self):
        with pytest.raises(ConfigurationError, match="application kind"):
            ApplicationSpec(kind="corpus").validate()

    def test_unknown_builtin_application(self):
        with pytest.raises(ConfigurationError, match="builtin application"):
            ApplicationSpec(kind="builtin", name="radar").validate()

    def test_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="engine kind"):
            EngineSpec("turbo").validate()

    def test_bundled_needs_exactly_one_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            ApplicationSpec(kind="bundled").validate()
        with pytest.raises(ConfigurationError, match="exactly one"):
            ApplicationSpec(
                kind="bundled", path="x.json", document={}
            ).validate()

    def test_inline_architecture_needs_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            ArchitectureSpec(kind="inline").validate()

    def test_sizes_only_for_sweeps(self):
        with pytest.raises(ConfigurationError, match="sweep"):
            ExplorationRequest(kind="single", sizes=(100,)).validate()

    def test_seeds_only_for_batches(self):
        # a single-kind request with seeds would silently run one seed
        with pytest.raises(ConfigurationError, match="batch"):
            ExplorationRequest(kind="single", seeds=(1, 2, 3)).validate()

    def test_runs_only_for_batches_and_sweeps(self):
        with pytest.raises(ConfigurationError, match="runs"):
            ExplorationRequest(kind="single", runs=3).validate()
        ExplorationRequest(kind="batch", runs=3).validate()

    def test_warmup_needs_the_annealer(self):
        from repro.api.specs import BudgetSpec, StrategySpec

        with pytest.raises(ConfigurationError, match="annealer"):
            ExplorationRequest(
                strategy=StrategySpec("ga"),
                budget=BudgetSpec(iterations=10, warmup_iterations=5),
            ).validate()

    def test_sweep_needs_sizes(self):
        with pytest.raises(ConfigurationError, match="sizes"):
            ExplorationRequest(kind="sweep").validate()

    def test_sweep_rejects_architecture_spec(self):
        with pytest.raises(ConfigurationError, match="EPICURE"):
            ExplorationRequest(
                kind="sweep", sizes=(100,),
                architecture=ArchitectureSpec(),
            ).validate()

    def test_portfolio_kinds_checked(self):
        with pytest.raises(ConfigurationError, match="portfolio strategy"):
            ExplorationRequest(
                kind="portfolio", portfolio_kinds=("sa", "cma_es"),
            ).validate()

    def test_budget_bounds(self):
        with pytest.raises(ConfigurationError):
            BudgetSpec(iterations=0).validate()
        with pytest.raises(ConfigurationError):
            BudgetSpec(time_limit_s=0.0).validate()
        with pytest.raises(ConfigurationError):
            BudgetSpec(stall_limit=0).validate()


class TestLoadRequest:
    def test_missing_file_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_request(str(tmp_path / "nope.json"))

    def test_invalid_json_is_configuration_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_request(str(path))


class TestEngineOptions:
    """EngineSpec.options: the array engine's tuning knobs."""

    def test_dispatch_modes_accepted(self):
        for mode in ("auto", "kernel", "scalar"):
            EngineSpec("array", {"dispatch": mode}).validate()

    def test_unknown_dispatch_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="dispatch"):
            EngineSpec("array", {"dispatch": "warp"}).validate()

    def test_dispatch_on_non_array_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="array"):
            EngineSpec("incremental", {"dispatch": "auto"}).validate()

    def test_min_work_must_be_a_non_negative_int(self):
        EngineSpec("array", {"kernel_batch_min_work": 0}).validate()
        with pytest.raises(ConfigurationError, match="kernel_batch_min_work"):
            EngineSpec("array", {"kernel_batch_min_work": -1}).validate()

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            EngineSpec("array", {"turbo": True}).validate()
