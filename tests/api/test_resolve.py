"""Resolution-pipeline tests: specs → live objects, once, correctly."""

import pickle

import pytest

from repro.api.resolve import (
    build_catalog,
    build_cost_function,
    resolve_application,
    resolve_architecture,
    resolve_request,
    resolve_strategy,
)
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.io import (
    ProblemInstance,
    application_to_dict,
    architecture_to_dict,
    dump_application,
    instance_to_dict,
)
from repro.mapping.cost import MakespanCost, SystemCost
from repro.model.generator import GeneratorConfig, random_application
from repro.model.motion import MOTION_DEADLINE_MS


def tiny_app(seed=9):
    return random_application(
        GeneratorConfig(num_tasks=5), seed=seed, name="tiny5"
    )


class TestResolveApplication:
    def test_builtin_motion(self):
        problem = resolve_application(ApplicationSpec())
        assert problem.application.name == "motion_detection"
        assert len(problem.application) == 28
        assert problem.deadline_ms == MOTION_DEADLINE_MS
        assert problem.architecture is None

    def test_generated_is_deterministic(self):
        spec = ApplicationSpec(
            kind="generated", generator={"num_tasks": 10}, seed=4
        )
        one = resolve_application(spec).application
        two = resolve_application(spec).application
        assert dump_application(one) == dump_application(two)
        assert len(one) == 10

    def test_bundled_document_supplies_platform_and_deadline(self):
        from repro.arch.architecture import epicure_architecture

        document = instance_to_dict(ProblemInstance(
            tiny_app(), epicure_architecture(n_clbs=700),
            deadline_ms=9.0, name="bundle",
        ))
        problem = resolve_application(
            ApplicationSpec(kind="bundled", document=document)
        )
        assert problem.architecture is not None
        assert problem.deadline_ms == 9.0

    def test_inline_path(self, tmp_path):
        path = tmp_path / "app.json"
        path.write_text(dump_application(tiny_app()))
        problem = resolve_application(
            ApplicationSpec(kind="inline", path=str(path))
        )
        assert problem.application.name == "tiny5"

    def test_inline_wrong_format_is_loud(self):
        with pytest.raises(ConfigurationError, match="application"):
            resolve_application(ApplicationSpec(
                kind="inline", document={"format": "solution", "version": 1},
            ))


class TestResolveArchitecture:
    def test_default_is_epicure(self):
        arch = resolve_architecture(None)
        assert [type(r).__name__ for r in arch.resources()] == [
            "Processor", "ReconfigurableCircuit",
        ]

    def test_builtin_options_forwarded(self):
        arch = resolve_architecture(ArchitectureSpec(
            n_clbs=500, options={"bus_rate_kbytes_per_ms": 5.0},
        ))
        assert arch.bus.rate_kbytes_per_ms == 5.0

    def test_unknown_builtin_option_is_loud(self):
        with pytest.raises(ConfigurationError, match="invalid option"):
            resolve_architecture(
                ArchitectureSpec(options={"bus_speed": 5.0})
            )

    def test_explicit_spec_wins_over_bundle(self):
        from repro.arch.architecture import epicure_architecture

        bundled = epicure_architecture(n_clbs=700)
        arch = resolve_architecture(ArchitectureSpec(n_clbs=300), bundled)
        assert arch.reconfigurable_circuits()[0].n_clbs == 300

    def test_inline_document(self):
        from repro.arch.architecture import epicure_architecture

        document = architecture_to_dict(epicure_architecture(n_clbs=900))
        arch = resolve_architecture(
            ArchitectureSpec(kind="inline", document=document)
        )
        assert arch.reconfigurable_circuits()[0].n_clbs == 900


class TestResolveStrategy:
    def test_sa_folding_is_key_minimal(self):
        spec = resolve_strategy(
            StrategySpec("sa", {"keep_trace": False}),
            BudgetSpec(iterations=800, warmup_iterations=200),
            EngineSpec("full"),
        )
        # exactly the keys the historical hand-assembled jobs used, so
        # fingerprints (and therefore old checkpoints) stay compatible
        assert set(spec.options) == {
            "iterations", "warmup_iterations", "keep_trace", "engine",
        }
        assert spec.options["iterations"] == 800
        assert spec.options["warmup_iterations"] == 200
        assert spec.options["engine"] == "full"

    def test_sa_warmup_defaults_from_iterations(self):
        from repro.sa.annealer import default_warmup

        spec = resolve_strategy(
            StrategySpec("sa"), BudgetSpec(iterations=800), EngineSpec(),
        )
        assert spec.options["warmup_iterations"] == default_warmup(800)

    def test_iterations_map_to_natural_units(self):
        ga = resolve_strategy(
            StrategySpec("ga"), BudgetSpec(iterations=30), EngineSpec()
        )
        assert ga.options["generations"] == 30
        rnd = resolve_strategy(
            StrategySpec("random"), BudgetSpec(iterations=50), EngineSpec()
        )
        assert rnd.options["samples"] == 50

    def test_stall_limit_folds_into_sa(self):
        spec = resolve_strategy(
            StrategySpec("sa"),
            BudgetSpec(iterations=500, stall_limit=40),
            EngineSpec(),
        )
        assert spec.options["stall_limit"] == 40

    def test_cost_and_catalog_become_live_objects(self):
        spec = resolve_strategy(
            StrategySpec(
                "sa",
                {"p_zero": 0.05},
                cost={"kind": "system", "deadline_ms": 40.0},
                catalog=(
                    {"kind": "processor"},
                    {"kind": "reconfigurable", "n_clbs": 400,
                     "reconfig_ms_per_clb": 0.02},
                    {"kind": "asic"},
                ),
            ),
            BudgetSpec(iterations=100),
            EngineSpec(),
        )
        assert isinstance(spec.options["cost_function"], SystemCost)
        factories = spec.options["catalog"]
        assert isinstance(factories[0]("p"), Processor)
        assert isinstance(factories[1]("r"), ReconfigurableCircuit)
        assert isinstance(factories[2]("a"), Asic)

    def test_spec_built_catalog_pickles(self):
        # unlike lambda catalogs, spec-built factories cross the
        # runner's spawn boundary
        factories = build_catalog(({"kind": "asic", "monetary_cost": 2.0},))
        clone = pickle.loads(pickle.dumps(factories))
        assert isinstance(clone[0]("a"), Asic)

    def test_invalid_catalog_params_fail_at_resolve(self):
        with pytest.raises(ConfigurationError, match="catalog"):
            build_catalog(({"kind": "processor", "clock_ghz": 3.0},))

    def test_cost_kinds(self):
        assert build_cost_function(None) is None
        assert isinstance(
            build_cost_function({"kind": "makespan"}), MakespanCost
        )


class TestResolveRequest:
    def test_single_seed_plan(self):
        resolved = resolve_request(ExplorationRequest(seed=3))
        assert resolved.seeds == [3]
        assert resolved.deadline_ms == MOTION_DEADLINE_MS

    def test_batch_consecutive_seeds(self):
        resolved = resolve_request(
            ExplorationRequest(kind="batch", seed=10, runs=3)
        )
        assert resolved.seeds == [10, 11, 12]

    def test_batch_explicit_seeds_win(self):
        resolved = resolve_request(
            ExplorationRequest(kind="batch", seed=10, seeds=(4, 8))
        )
        assert resolved.seeds == [4, 8]

    def test_sweep_uses_historical_formula(self):
        resolved = resolve_request(ExplorationRequest(
            kind="sweep", seed=1, sizes=(300, 600), runs=2,
            application=ApplicationSpec(
                kind="inline", document=application_to_dict(tiny_app()),
            ),
        ))
        assert resolved.seeds == [
            1 + 1000 * 0 + 300, 1 + 1000 * 1 + 300,
            1 + 1000 * 0 + 600, 1 + 1000 * 1 + 600,
        ]
        assert resolved.deadline_ms == 40.0  # historical sweep default
