"""Spec-level warm-start seeding and anytime snapshots through explore.

Two additive contracts:

* ``StrategySpec.initial_solution`` / ``BudgetSpec.anytime`` are
  omit-when-None — requests that do not use them serialize (and
  content-hash) byte-identically to before the fields existed;
* a seeded run starts from the given solution (deterministically,
  engine-independently) and an anytime budget surfaces periodic
  incumbent snapshots as the response's ``partials`` section.
"""

import json

import pytest

from repro.api.facade import ExplorationResponse, explore
from repro.api.specs import (
    ApplicationSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.errors import ConfigurationError
from repro.io import ProblemInstance, instance_to_dict

SEED_DOC_STUB = {"format": "solution"}


@pytest.fixture
def instance_doc(small_app, small_arch):
    return instance_to_dict(
        ProblemInstance(small_app, small_arch, deadline_ms=40.0)
    )


def request_for(document, **overrides):
    base = dict(
        kind="single",
        application=ApplicationSpec(kind="bundled", document=document),
        strategy=StrategySpec("sa", {"keep_trace": True}),
        budget=BudgetSpec(iterations=80, warmup_iterations=10),
        seed=5,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


class TestSpecValidation:
    def test_initial_solution_must_be_solution_document(self):
        spec = StrategySpec("sa", initial_solution={"format": "instance"})
        with pytest.raises(ConfigurationError, match="solution document"):
            spec.validate()

    def test_initial_solution_must_be_mapping(self):
        spec = StrategySpec("sa", initial_solution=[1, 2])
        with pytest.raises(ConfigurationError, match="JSON object"):
            spec.validate()

    def test_initial_solution_rejects_catalog(self):
        spec = StrategySpec(
            "sa",
            catalog=({"kind": "processor"},),
            initial_solution=SEED_DOC_STUB,
        )
        with pytest.raises(ConfigurationError, match="catalog"):
            spec.validate()

    def test_initial_solution_single_and_batch_only(self, instance_doc):
        request = request_for(
            instance_doc,
            kind="sweep",
            sizes=(200, 400),
            strategy=StrategySpec("sa", initial_solution=SEED_DOC_STUB),
        )
        with pytest.raises(ConfigurationError, match="single and batch"):
            request.validate()

    @pytest.mark.parametrize(
        "anytime, message",
        [
            ({}, "interval_iterations and/or"),
            ({"bogus": 1}, "unknown"),
            ({"interval_iterations": 0}, "int >= 1"),
            ({"interval_iterations": True}, "int >= 1"),
            ({"interval_s": 0}, "> 0"),
            ({"interval_s": True}, "> 0"),
        ],
    )
    def test_anytime_validation(self, anytime, message):
        with pytest.raises(ConfigurationError, match=message):
            BudgetSpec(iterations=10, anytime=anytime).validate()

    def test_anytime_rejected_for_portfolio(self, instance_doc):
        request = request_for(
            instance_doc,
            kind="portfolio",
            strategy=StrategySpec("sa", {}),
            budget=BudgetSpec(
                iterations=20, anytime={"interval_iterations": 5}
            ),
        )
        with pytest.raises(ConfigurationError, match="portfolio"):
            request.validate()


class TestCanonicalStability:
    """Unused warm/anytime fields leave the wire format untouched."""

    def test_unused_fields_are_omitted(self, instance_doc):
        document = request_for(instance_doc).to_dict()
        assert "initial_solution" not in document["strategy"]
        assert "anytime" not in document["budget"]
        response_doc = explore(request_for(instance_doc)).to_dict()
        assert "partials" not in response_doc

    def test_used_fields_round_trip(self, instance_doc):
        request = request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=80,
                warmup_iterations=10,
                anytime={"interval_iterations": 20},
            ),
        )
        document = request.to_dict()
        assert document["budget"]["anytime"] == {"interval_iterations": 20}
        assert ExplorationRequest.from_dict(document) == request

    def test_content_hash_unchanged_by_new_none_fields(self, instance_doc):
        # the content hash is over the canonical document; absent-when-
        # None means pre-PR requests hash identically
        request = request_for(instance_doc)
        text = request.to_json()
        assert "initial_solution" not in text
        assert "anytime" not in text


class TestSeededExplore:
    def _donor_best(self, instance_doc):
        response = explore(request_for(instance_doc))
        return response.best

    def test_seeded_run_starts_from_the_seed(self, instance_doc):
        donor_best = self._donor_best(instance_doc)
        seeded = explore(request_for(
            instance_doc,
            strategy=StrategySpec(
                "sa",
                {"keep_trace": True},
                initial_solution=donor_best["solution"],
            ),
            budget=BudgetSpec(iterations=80, warmup_iterations=0),
        ))
        # best-so-far can only improve on the donor's incumbent
        assert seeded.best["cost"] <= donor_best["cost"] + 1e-9
        history = seeded.results[0]["history"]
        assert history[0] <= donor_best["cost"] + 1e-9

    def test_seeded_run_is_engine_independent(self, instance_doc):
        donor_best = self._donor_best(instance_doc)
        histories = []
        for engine in ("full", "incremental", "array"):
            response = explore(request_for(
                instance_doc,
                strategy=StrategySpec(
                    "sa",
                    {"keep_trace": True},
                    initial_solution=donor_best["solution"],
                ),
                budget=BudgetSpec(iterations=60, warmup_iterations=0),
                engine=EngineSpec(engine),
            ))
            histories.append(response.results[0]["history"])
        assert histories[0] == histories[1] == histories[2]

    def test_seeded_run_is_deterministic(self, instance_doc):
        from repro.obs.telemetry import strip_times

        donor_best = self._donor_best(instance_doc)
        request = request_for(
            instance_doc,
            strategy=StrategySpec(
                "sa", {}, initial_solution=donor_best["solution"],
            ),
            budget=BudgetSpec(iterations=60, warmup_iterations=0),
        )
        a = strip_times(explore(request).to_dict())
        b = strip_times(explore(request).to_dict())
        assert a == b

    def test_batch_threads_the_seed_to_every_run(self, instance_doc):
        donor_best = self._donor_best(instance_doc)
        response = explore(request_for(
            instance_doc,
            kind="batch",
            strategy=StrategySpec(
                "sa",
                {"keep_trace": True},
                initial_solution=donor_best["solution"],
            ),
            budget=BudgetSpec(iterations=60, warmup_iterations=0),
            seeds=(5, 6),
        ))
        for result in response.results:
            assert result["history"][0] <= donor_best["cost"] + 1e-9


class TestAnytimeSnapshots:
    def test_interval_iterations_snapshots(self, instance_doc):
        response = explore(request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=100,
                warmup_iterations=0,
                anytime={"interval_iterations": 10},
            ),
        ))
        assert response.partials is not None
        (entry,) = response.partials
        assert entry["index"] == 0
        snapshots = entry["snapshots"]
        assert len(snapshots) >= 5
        for snapshot in snapshots:
            assert set(snapshot) == {
                "iteration", "best_cost", "current_cost", "elapsed_s",
            }
        iterations = [s["iteration"] for s in snapshots]
        assert iterations == sorted(iterations)
        best = [s["best_cost"] for s in snapshots]
        assert best == sorted(best, reverse=True)  # monotone improvement

    def test_interval_s_snapshots(self, instance_doc):
        response = explore(request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=200,
                warmup_iterations=0,
                anytime={"interval_s": 1e-6},
            ),
        ))
        assert response.partials is not None
        assert response.partials[0]["snapshots"]

    def test_partials_survive_the_wire(self, instance_doc):
        response = explore(request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=100,
                warmup_iterations=0,
                anytime={"interval_iterations": 25},
            ),
        ))
        document = response.to_dict()
        assert document["partials"] == response.partials
        reloaded = ExplorationResponse.from_json(response.to_json())
        assert reloaded.partials == response.partials

    def test_snapshots_are_deterministic_modulo_time(self, instance_doc):
        from repro.obs.telemetry import strip_times

        request = request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=100,
                warmup_iterations=0,
                anytime={"interval_iterations": 10},
            ),
        )
        a = strip_times(explore(request).to_dict())["partials"]
        b = strip_times(explore(request).to_dict())["partials"]
        assert a == b

    def test_no_anytime_no_partials(self, instance_doc):
        response = explore(request_for(instance_doc))
        assert response.partials is None

    def test_time_limit_caps_the_run(self, instance_doc):
        request = request_for(
            instance_doc,
            budget=BudgetSpec(
                iterations=10_000_000, warmup_iterations=0,
                time_limit_s=0.2,
            ),
        )
        response = explore(request)
        assert response.results[0]["iterations_run"] < 10_000_000
        assert json.loads(response.to_json())["kind"] == "single"
