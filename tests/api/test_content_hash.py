"""Golden fixtures for ``ExplorationRequest.content_hash``.

The content hash is the request half of the service's cache key, so its
stability is a compatibility contract: if any of these pinned digests
changes, every result store in the field silently misses its cache.  A
failure here must be a deliberate, reviewed event (bump the goldens in
the same commit that changes the canonical form).

The digests below were computed under two different ``PYTHONHASHSEED``
values and are asserted equal here under whatever seed the test run
uses — the canonical form is key-sorted JSON, so dict iteration order
never leaks in.
"""

import hashlib
import json

from repro.api.specs import (
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)


def _fixtures():
    return {
        "default": ExplorationRequest(),
        "paper-single": ExplorationRequest(
            kind="single",
            budget=BudgetSpec(iterations=8000, warmup_iterations=1200),
            seed=1,
        ),
        "batch-seeds": ExplorationRequest(
            kind="batch", seeds=(1, 2, 3),
            budget=BudgetSpec(iterations=500),
        ),
        "sweep-grid": ExplorationRequest(
            kind="sweep", sizes=(200, 400), runs=2,
            budget=BudgetSpec(iterations=500, warmup_iterations=100),
        ),
        "portfolio": ExplorationRequest(kind="portfolio", seed=11),
        "array-engine": ExplorationRequest(
            engine=EngineSpec("array", {"dispatch": "kernel"}),
            architecture=ArchitectureSpec(kind="builtin", n_clbs=800),
            strategy=StrategySpec("sa", {"schedule_name": "geometric"}),
            seed=5,
        ),
    }


#: The pinned digests (schema_version 1 canonical form).
GOLDEN_HASHES = {
    "default": "f2375758189daa6baaf0f31de6f15fae308b19292cf6fd2ef615f8b5f06a1ee5",
    "paper-single": "2b5aa2a6cdc7d63966a935a2009e11997344972f33457164252a61a74ceeee15",
    "batch-seeds": "1d78029308f611b4169ac23da99d61f5523044e76e4f9a2f0cca9393bcfa217d",
    "sweep-grid": "191a0cf3055a679fc7b6369c2eac975d6a768b5c07913c9edd1cfb68914f4daa",
    "portfolio": "83b2b088564271018a1c91791dcdea5d9744c9dd05436bca58f97bba78cb4fb5",
    "array-engine": "8acc4ee85557147581900d72761cd4e7c2e3f56017e59bf775b368dab1fda9cb",
}


class TestGoldenHashes:
    def test_every_fixture_matches_its_pinned_digest(self):
        computed = {
            name: request.content_hash()
            for name, request in _fixtures().items()
        }
        assert computed == GOLDEN_HASHES

    def test_hash_is_sha256_of_canonical_json(self):
        request = _fixtures()["paper-single"]
        expected = hashlib.sha256(
            request.canonical_json().encode("utf-8")
        ).hexdigest()
        assert request.content_hash() == expected

    def test_canonical_json_is_key_sorted_and_compact(self):
        text = ExplorationRequest().canonical_json()
        data = json.loads(text)
        assert text == json.dumps(
            data, sort_keys=True, separators=(",", ":")
        )


class TestHashProperties:
    def test_key_order_insensitive(self):
        request = _fixtures()["array-engine"]
        shuffled = dict(reversed(list(request.to_dict().items())))
        reparsed = ExplorationRequest.from_dict(shuffled)
        assert reparsed.content_hash() == request.content_hash()

    def test_json_round_trip_preserves_the_hash(self):
        for name, request in _fixtures().items():
            reparsed = ExplorationRequest.from_json(request.to_json())
            assert reparsed.content_hash() == request.content_hash(), name

    def test_every_field_change_changes_the_hash(self):
        base = ExplorationRequest()
        variants = [
            ExplorationRequest(seed=8),
            ExplorationRequest(budget=BudgetSpec(iterations=100)),
            ExplorationRequest(engine=EngineSpec("array")),
            ExplorationRequest(
                strategy=StrategySpec("sa", {"schedule_name": "geometric"})
            ),
            ExplorationRequest(
                architecture=ArchitectureSpec(kind="builtin", n_clbs=500)
            ),
            ExplorationRequest(deadline_ms=50.0),
        ]
        hashes = {req.content_hash() for req in variants}
        assert base.content_hash() not in hashes
        assert len(hashes) == len(variants)

    def test_identical_requests_hash_identically(self):
        one = ExplorationRequest(seed=3, budget=BudgetSpec(iterations=40))
        two = ExplorationRequest(seed=3, budget=BudgetSpec(iterations=40))
        assert one is not two
        assert one.content_hash() == two.content_hash()
