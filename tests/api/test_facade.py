"""Façade tests: spec-driven runs are bit-identical to legacy wiring.

The acceptance bar of the API redesign: a single ``ExplorationRequest``
JSON file reproduces — same seeds, bit-for-bit — runs that previously
required hand-assembled constructors, for every request kind.
"""

import json

import pytest

from repro.api.facade import ExplorationResponse, explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
    load_request,
)
from repro.errors import ConfigurationError
from repro.io import application_to_dict, solution_to_dict
from repro.model.generator import GeneratorConfig, random_application


ITER, WARMUP = 250, 50


def small_request(**overrides):
    base = dict(
        kind="single",
        application=ApplicationSpec(kind="builtin", name="motion"),
        architecture=ArchitectureSpec(kind="builtin", n_clbs=2000),
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=BudgetSpec(iterations=ITER, warmup_iterations=WARMUP),
        engine=EngineSpec("incremental"),
        seed=1,
    )
    base.update(overrides)
    return ExplorationRequest(**base)


def result_fingerprint(result):
    """Everything that must match bit-for-bit between two runs."""
    return (
        result.best_cost,
        result.final_cost,
        result.iterations_run,
        list(result.history),
        solution_to_dict(result.best_solution),
    )


class TestSingleEquivalence:
    def test_matches_direct_explorer(self):
        from repro.arch.architecture import epicure_architecture
        from repro.model.motion import motion_detection_application
        from repro.sa.explorer import DesignSpaceExplorer

        response = explore(small_request())
        direct = DesignSpaceExplorer(
            motion_detection_application(),
            epicure_architecture(n_clbs=2000),
            iterations=ITER,
            warmup_iterations=WARMUP,
            seed=1,
            keep_trace=False,
            engine="incremental",
        ).search()
        assert result_fingerprint(response.best_result) == result_fingerprint(direct)

    def test_spec_file_reproduces_in_memory_run(self, tmp_path):
        request = small_request()
        path = tmp_path / "run.json"
        path.write_text(request.to_json())
        from_file = explore(load_request(str(path)))
        in_memory = explore(request)
        assert (
            result_fingerprint(from_file.best_result)
            == result_fingerprint(in_memory.best_result)
        )
        assert from_file.best["solution"] == in_memory.best["solution"]


class TestBatchEquivalence:
    def test_matches_direct_runner_and_parallel(self):
        from repro.arch.architecture import epicure_architecture
        from repro.model.motion import motion_detection_application
        from repro.search.runner import (
            InstanceSpec,
            SearchJob,
            StrategySpec as RunnerSpec,
            run_search_jobs,
        )

        request = small_request(kind="batch", seeds=(3, 5, 9))
        sequential = explore(request, jobs=1)
        parallel = explore(request, jobs=2)
        # the legacy hand-assembled wiring
        spec = RunnerSpec("sa", {
            "iterations": ITER,
            "warmup_iterations": WARMUP,
            "keep_trace": False,
            "engine": "incremental",
        })
        instance = InstanceSpec(
            motion_detection_application(),
            architecture=epicure_architecture(n_clbs=2000),
        )
        direct = run_search_jobs(
            [SearchJob(spec, instance, seed=s) for s in (3, 5, 9)]
        )
        for response in (sequential, parallel):
            assert [
                result_fingerprint(o.result) for o in response.outcomes
            ] == [result_fingerprint(o.result) for o in direct]
        assert sequential.summary == parallel.summary

    def test_checkpoint_resume_identical(self, tmp_path):
        request = small_request(kind="batch", runs=2, seed=7)
        path = str(tmp_path / "batch.jsonl")
        fresh = explore(request, checkpoint_path=path)
        resumed = explore(request, checkpoint_path=path)
        assert all(r["from_checkpoint"] for r in resumed.results)
        assert [r["best_cost"] for r in fresh.results] == [
            r["best_cost"] for r in resumed.results
        ]


class TestPortfolioEquivalence:
    def test_matches_run_portfolio(self):
        from repro.arch.architecture import epicure_architecture
        from repro.model.motion import motion_detection_application
        from repro.search.portfolio import run_portfolio

        request = small_request(kind="portfolio", seed=3)
        response = explore(request, jobs=2)
        direct = run_portfolio(
            motion_detection_application(),
            architecture=epicure_architecture(n_clbs=2000),
            iterations=ITER,
            seed=3,
            engine="incremental",
            warmup_iterations=WARMUP,
        )
        assert [e.kind for e in response.entries] == [e.kind for e in direct]
        assert [e.best_cost for e in response.entries] == [
            e.best_cost for e in direct
        ]
        assert response.summary["winner"] == direct[0].kind

    def test_subset_of_kinds(self):
        request = small_request(
            kind="portfolio", portfolio_kinds=("sa", "random"), seed=2
        )
        response = explore(request)
        assert sorted(r["tag"] for r in response.results) == ["random", "sa"]


class TestSweepEquivalence:
    def test_matches_legacy_wiring_and_run_device_sweep(self):
        from repro.analysis.sweep import _aggregate_rows, run_device_sweep
        from repro.model.generator import GeneratorConfig
        from repro.search.runner import (
            InstanceSpec,
            SearchJob,
            StrategySpec as RunnerSpec,
            best_evaluation_of,
            run_search_jobs,
        )

        application = random_application(
            GeneratorConfig(num_tasks=8), seed=2, name="sweep8"
        )
        sizes, runs, seed0 = (300, 600), 2, 3
        request = ExplorationRequest(
            kind="sweep",
            application=ApplicationSpec(
                kind="inline", document=application_to_dict(application),
            ),
            strategy=StrategySpec("sa", {"keep_trace": False}),
            budget=BudgetSpec(iterations=120, warmup_iterations=30),
            engine=EngineSpec("full"),
            seed=seed0,
            runs=runs,
            sizes=sizes,
        )
        response = explore(request, jobs=2)

        # the pre-redesign wiring, replicated verbatim
        spec = RunnerSpec("sa", {
            "iterations": 120,
            "warmup_iterations": 30,
            "keep_trace": False,
            "engine": "full",
        })
        job_list = [
            SearchJob(
                spec,
                InstanceSpec(application, n_clbs=n_clbs),
                seed=seed0 + 1000 * r + n_clbs,
                tag=[n_clbs, r],
            )
            for n_clbs in sizes
            for r in range(runs)
        ]
        outcomes = run_search_jobs(job_list)
        legacy_rows = _aggregate_rows(
            sizes, runs,
            {
                (o.tag[0], o.tag[1]): best_evaluation_of(o.result)
                for o in outcomes
            },
            40.0,
        )
        assert response.rows == legacy_rows  # frozen dataclass equality

        helper_rows = run_device_sweep(
            application, sizes=sizes, runs=runs, iterations=120,
            warmup_iterations=30, seed0=seed0, engine="full",
        )
        assert helper_rows == legacy_rows

    def test_summary_rows_mirror_dataclasses(self):
        request = ExplorationRequest(
            kind="sweep",
            sizes=(400,),
            runs=1,
            budget=BudgetSpec(iterations=150, warmup_iterations=30),
            seed=1,
        )
        response = explore(request)
        row = response.summary["rows"][0]
        assert row["n_clbs"] == response.rows[0].n_clbs
        assert row["execution_ms"] == response.rows[0].execution_ms
        assert response.summary["deadline_ms"] == 40.0


class TestResponseEnvelope:
    def test_json_round_trip(self):
        response = explore(small_request())
        document = json.loads(response.to_json())
        assert document["format"] == "exploration-response"
        clone = ExplorationResponse.from_json(response.to_json())
        assert clone.best == response.best
        assert clone.results == response.results
        assert clone.summary == response.summary

    def test_disk_round_trip_is_byte_exact(self, tmp_path):
        # The service's cache serves persisted envelopes verbatim, so a
        # save/load/save cycle must reproduce the file byte for byte —
        # per-seed stats, best-so-far history and all.
        from repro.api.facade import load_response

        response = explore(small_request(
            kind="batch", seeds=(1, 2),
            strategy=StrategySpec("sa", {"keep_trace": True}),
        ))
        assert response.results[0]["history"]  # history survives
        assert response.summary["runs"] == 2  # per-seed stats survive
        path = str(tmp_path / "response.json")
        written = response.save(path)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == written
        clone = load_response(path)
        assert clone.to_json() == written
        # and the cycle is a fixed point, not just a one-shot match
        path2 = str(tmp_path / "again.json")
        assert clone.save(path2) == written

    def test_disk_round_trip_with_telemetry_block(self, tmp_path):
        from repro.api.facade import load_response
        from repro.obs.telemetry import Telemetry

        response = explore(small_request(), telemetry=Telemetry(label="t"))
        assert response.telemetry is not None
        path = str(tmp_path / "response.json")
        written = response.save(path)
        clone = load_response(path)
        assert clone.telemetry == response.telemetry
        assert clone.to_json() == written

    def test_load_response_missing_file(self, tmp_path):
        from repro.api.facade import load_response

        with pytest.raises(ConfigurationError, match="cannot read"):
            load_response(str(tmp_path / "absent.json"))

    def test_best_solution_document_reloads(self):
        from repro.arch.architecture import epicure_architecture
        from repro.io import solution_from_dict
        from repro.model.motion import motion_detection_application

        response = explore(small_request())
        solution = solution_from_dict(
            response.best["solution"],
            motion_detection_application(),
            epicure_architecture(n_clbs=2000),
        )
        solution.validate()

    def test_environment_stamp_present(self):
        response = explore(small_request())
        assert response.environment["repro_version"]
        assert response.environment["python"]

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="exploration-response"):
            ExplorationResponse.from_dict({"format": "bench-results"})

    def test_invalid_jobs(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            explore(small_request(), jobs=0)


class TestDeadlineVerdict:
    def test_deadline_met_uses_makespan_not_cost(self):
        # Under a SystemCost the scalar cost is money + penalty; a tiny
        # cost must not read as "deadline met" when the makespan misses.
        response = explore(small_request(
            strategy=StrategySpec(
                "sa",
                {"keep_trace": False},
                cost={"kind": "system", "deadline_ms": 1.0,
                      "penalty_per_ms": 0.001},
            ),
            deadline_ms=1.0,
        ))
        assert response.best["evaluation"]["makespan_ms"] > 1.0
        assert response.summary["deadline_met"] is False


class TestBudgetLimits:
    def test_stall_limit_stops_early(self):
        limited = explore(small_request(
            budget=BudgetSpec(
                iterations=ITER, warmup_iterations=WARMUP, stall_limit=10,
            ),
        ))
        assert limited.results[0]["iterations_run"] < ITER

    def test_time_limit_applies_to_any_strategy(self):
        response = explore(small_request(
            strategy=StrategySpec("random"),
            budget=BudgetSpec(iterations=100000, time_limit_s=0.2),
        ))
        assert response.results[0]["iterations_run"] < 100000
