"""Tests for the annealing engine."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.mapping.cost import MakespanCost
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.annealer import AnnealerConfig, SimulatedAnnealing
from repro.sa.moves import MoveGenerator
from repro.sa.schedules import LamDelosmeSchedule


def make_annealer(app, arch, **config_kwargs):
    defaults = dict(iterations=400, warmup_iterations=100, seed=1)
    defaults.update(config_kwargs)
    return SimulatedAnnealing(
        evaluator=Evaluator(app, arch),
        move_generator=MoveGenerator(app, p_impl=0.15, p_offload=0.15),
        schedule=LamDelosmeSchedule(),
        config=AnnealerConfig(**defaults),
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnnealerConfig(iterations=0).validate()
        with pytest.raises(ConfigurationError):
            AnnealerConfig(iterations=10, warmup_iterations=10).validate()
        with pytest.raises(ConfigurationError):
            AnnealerConfig(iterations=10, stall_limit=0).validate()


class TestRun:
    def test_improves_over_initial(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch)
        rng = random.Random(0)
        initial = random_initial_solution(small_app, small_arch, rng)
        initial_cost = annealer.evaluator.makespan_ms(initial)
        result = annealer.run(initial)
        assert result.best_cost <= initial_cost
        assert result.iterations_run == 400
        result.best_solution.validate()

    def test_best_solution_feasible_and_scored_correctly(
        self, small_app, small_arch
    ):
        annealer = make_annealer(small_app, small_arch)
        rng = random.Random(3)
        initial = random_initial_solution(small_app, small_arch, rng)
        result = annealer.run(initial)
        check = annealer.evaluator.evaluate(result.best_solution)
        assert check.feasible
        assert check.makespan_ms == pytest.approx(result.best_cost)

    def test_trace_recorded(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch)
        initial = random_initial_solution(
            small_app, small_arch, random.Random(0)
        )
        result = annealer.run(initial)
        assert len(result.trace) == 400
        assert result.trace[0].iteration == 1
        # warmup iterations report infinite temperature
        assert math.isinf(result.trace[50].temperature)
        assert not math.isinf(result.trace[-1].temperature)

    def test_trace_disabled(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch, keep_trace=False)
        initial = random_initial_solution(
            small_app, small_arch, random.Random(0)
        )
        result = annealer.run(initial)
        assert result.trace == []

    def test_deterministic_for_seed(self, small_app, small_arch):
        results = []
        for _ in range(2):
            annealer = make_annealer(small_app, small_arch, seed=7)
            initial = random_initial_solution(
                small_app, small_arch, random.Random(7)
            )
            results.append(annealer.run(initial).best_cost)
        assert results[0] == results[1]

    def test_infeasible_initial_rejected(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch)
        bad = Solution(small_app, small_arch)
        bad.assign_to_processor(1, "cpu")  # order violates 0 -> 1
        bad.assign_to_processor(0, "cpu")
        for t in (2, 3, 4, 5):
            bad.assign_to_processor(t, "cpu")
        with pytest.raises(ConfigurationError):
            annealer.run(bad)

    def test_stall_limit_stops_early(self, small_app, small_arch):
        annealer = make_annealer(
            small_app, small_arch, iterations=2000, warmup_iterations=50,
            stall_limit=100,
        )
        initial = random_initial_solution(
            small_app, small_arch, random.Random(1)
        )
        result = annealer.run(initial)
        assert result.iterations_run < 2000


class TestAnytime:
    def test_iterate_yields_running_result(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch)
        initial = random_initial_solution(
            small_app, small_arch, random.Random(2)
        )
        seen = 0
        for result in annealer.iterate(initial):
            seen += 1
            if seen == 37:
                break
        assert result.iterations_run == 37
        result.best_solution.validate()
        assert math.isfinite(result.best_cost)

    def test_interrupted_best_is_consistent(self, small_app, small_arch):
        annealer = make_annealer(small_app, small_arch)
        initial = random_initial_solution(
            small_app, small_arch, random.Random(2)
        )
        for result in annealer.iterate(initial):
            if result.iterations_run >= 150:
                break
        check = annealer.evaluator.evaluate(result.best_solution)
        assert check.makespan_ms == pytest.approx(result.best_cost)


class TestMotionEndToEnd:
    def test_meets_deadline_on_2000_clbs(self, motion_app, epicure):
        """Integration: a full run lands under the 40 ms constraint."""
        annealer = SimulatedAnnealing(
            evaluator=Evaluator(motion_app, epicure),
            move_generator=MoveGenerator(motion_app),
            schedule=LamDelosmeSchedule(),
            config=AnnealerConfig(
                iterations=6000, warmup_iterations=1000, seed=3,
                keep_trace=False,
            ),
        )
        initial = random_initial_solution(
            motion_app, epicure, random.Random(3)
        )
        result = annealer.run(initial)
        assert result.best_cost < 40.0
        ev = annealer.evaluator.evaluate(result.best_solution)
        assert ev.feasible and ev.num_contexts >= 1
