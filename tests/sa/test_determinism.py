"""Determinism regression: seeded explorer results are pinned.

``Dag.topological_order`` is FIFO-deterministic and the evaluation
engines are bit-identical, so a seeded :class:`DesignSpaceExplorer` run
must reproduce the exact same best makespan on every run, Python
version, and engine.  If an engine or graph refactor silently drifts
semantics, this pin catches it.
"""

from __future__ import annotations

import pytest

from repro.arch.architecture import epicure_architecture
from repro.model.motion import motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer

#: Exact best makespan of the seeded reference run below.  Update only
#: when a change is *supposed* to alter optimization semantics — and
#: then explain why in the commit message.
PINNED_BEST_MAKESPAN_MS = 50.164142537967514


def _run(engine: str) -> float:
    explorer = DesignSpaceExplorer(
        motion_detection_application(),
        epicure_architecture(n_clbs=2000),
        iterations=600,
        warmup_iterations=200,
        seed=42,
        keep_trace=False,
        engine=engine,
    )
    return explorer.run().best_evaluation.makespan_ms


@pytest.mark.parametrize("engine", ["full", "incremental"])
def test_seeded_explorer_best_makespan_is_pinned(engine):
    assert _run(engine) == PINNED_BEST_MAKESPAN_MS


def test_seeded_explorer_is_repeatable():
    assert _run("full") == _run("full")