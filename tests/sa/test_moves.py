"""Tests for moves m1-m4, mImpl, mOffload — including the apply/undo
round-trip property that the whole annealing loop relies on."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.moves import (
    CreateResourceMove,
    ImplementationMove,
    MoveGenerator,
    MoveStats,
    OffloadMove,
    ReassignMove,
    RemoveResourceMove,
    ReorderMove,
    restore_solution,
    snapshot_solution,
)


def sw_solution(small_app, small_arch):
    s = Solution(small_app, small_arch)
    for t in small_app.topological_order():
        s.assign_to_processor(t, "cpu")
    return s


class TestSnapshot:
    def test_roundtrip(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        snap = snapshot_solution(s)
        s.spawn_context(1, "fpga")
        s.set_implementation_choice(2, 1)
        restore_solution(s, snap)
        assert s.resource_name_of(1) == "cpu"
        assert s.implementation_choice(2) == 0
        s.validate()


class TestReorderMove:
    def test_moves_before_destination(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        # feasible orders of {1, 2} can swap (both depend only on 0)
        for t in (0, 1, 2, 3, 4, 5):
            s.assign_to_processor(t, "cpu")
        move = ReorderMove(task=2, dest_task=1)
        move.apply(s)
        assert s.software_order("cpu") == [0, 2, 1, 3, 4, 5]
        move.undo(s)
        assert s.software_order("cpu") == [0, 1, 2, 3, 4, 5]

    def test_precedence_clamp(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        # moving task 3 before task 0 is impossible (0 precedes 3);
        # the clamp slides it to the earliest feasible slot instead.
        order_before = list(s.software_order("cpu"))
        move = ReorderMove(task=3, dest_task=order_before[0])
        try:
            move.apply(s)
            pos3 = s.software_order("cpu").index(3)
            pos1 = s.software_order("cpu").index(1)
            pos2 = s.software_order("cpu").index(2)
            assert pos3 > pos1 and pos3 > pos2
            move.undo(s)
        except InfeasibleMoveError:
            pass  # fully chained order: also acceptable
        assert s.software_order("cpu") == order_before

    def test_chain_single_slot_is_infeasible(self, small_app, small_arch):
        s = Solution(small_app, small_arch)
        for t in (0, 1, 3, 4, 5):  # 2 on fpga -> order is a chain
            s.assign_to_processor(t, "cpu")
        s.spawn_context(2, "fpga")
        move = ReorderMove(task=4, dest_task=0)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_requires_same_processor(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ReorderMove(task=0, dest_task=1)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)


class TestReassignMove:
    def test_to_context(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ReassignMove(task=2, dest_task=1, rng=rng)
        move.apply(s)
        assert s.context_of(2) == ("fpga", 0)
        move.undo(s)
        assert s.resource_name_of(2) == "cpu"
        s.validate()

    def test_to_processor_inserts_before_destination(
        self, small_app, small_arch, rng
    ):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ReassignMove(task=1, dest_task=3, rng=rng)
        move.apply(s)
        order = s.software_order("cpu")
        assert order.index(1) < order.index(3)
        assert s.context_of(1) is None
        s.validate()

    def test_capacity_overflow_spawns_context(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        s.set_implementation_choice(1, 1)  # 200
        s.set_implementation_choice(3, 1)  # 240 -> cannot join ctx(1)
        s.spawn_context(1, "fpga")
        move = ReassignMove(task=3, dest_task=1, rng=rng)
        move.apply(s)
        assert s.contexts("fpga") == [[1], [3]]
        move.undo(s)
        assert s.contexts("fpga") == [[1]]

    def test_software_only_task_cannot_go_hw(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ReassignMove(task=4, dest_task=1, rng=rng)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)
        s.validate()

    def test_same_context_is_infeasible(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        s.assign_to_context(2, "fpga", 0)
        move = ReassignMove(task=1, dest_task=2, rng=rng)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_order_violation_rejected(self, small_app, small_arch, rng):
        """Task 3 depends on 1; joining a context *before* 1's would
        invert the GTLP order and must be refused by the precheck."""
        s = sw_solution(small_app, small_arch)
        s.spawn_context(2, "fpga")      # ctx0: task 2
        s.spawn_context(1, "fpga")      # ctx1: task 1  (2 and 1 unrelated)
        assert s.contexts("fpga") == [[2], [1]]
        move = ReassignMove(task=3, dest_task=2, rng=rng)
        # 3 depends on both 1 (ctx1) and 2 (ctx0): joining ctx0 puts an
        # ancestor (1) in a later context -> infeasible
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)


class TestImplementationMove:
    def test_switch_and_undo(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ImplementationMove(task=1, new_choice=1)
        move.apply(s)
        assert s.implementation_choice(1) == 1
        move.undo(s)
        assert s.implementation_choice(1) == 0

    def test_software_task_rejected(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        move = ImplementationMove(task=1, new_choice=1)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_same_choice_rejected(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        move = ImplementationMove(task=1, new_choice=0)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_context_overflow_rejected(self, small_app, small_arch):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")          # 100
        s.assign_to_context(2, "fpga", 0)   # +80
        s.assign_to_context(3, "fpga", 0)   # +120 = 300 (full)
        move = ImplementationMove(task=2, new_choice=1)  # 80 -> 160
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)
        s.validate()


class TestOffloadMove:
    def test_populates_empty_device(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        move = OffloadMove(task=1, rc_name="fpga", rng=rng)
        move.apply(s)
        assert s.context_of(1) is not None
        move.undo(s)
        assert s.resource_name_of(1) == "cpu"

    def test_software_only_rejected(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        move = OffloadMove(task=0, rc_name="fpga", rng=rng)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_replay_is_deterministic(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        move = OffloadMove(task=1, rc_name="fpga", rng=rng)
        move.apply(s)
        first = [list(c) for c in s.contexts("fpga")]
        move.undo(s)
        move.apply(s)
        assert [list(c) for c in s.contexts("fpga")] == first


class TestArchitectureMoves:
    def test_create_processor(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        move = CreateResourceMove(
            task=2, factory=lambda name: Processor(name), prefix="cpu"
        )
        move.apply(s)
        new_name = s.resource_name_of(2)
        assert new_name != "cpu"
        assert new_name in small_arch
        move.undo(s)
        assert new_name not in small_arch
        assert s.resource_name_of(2) == "cpu"
        s.validate()

    def test_create_asic_for_hw_task(self, small_app, small_arch, rng):
        s = sw_solution(small_app, small_arch)
        move = CreateResourceMove(
            task=1, factory=lambda name: Asic(name), prefix="asic"
        )
        move.apply(s)
        assert isinstance(s.resource_of(1), Asic)
        move.undo(s)
        s.validate()

    def test_create_hw_for_software_only_task_fails_cleanly(
        self, small_app, small_arch
    ):
        s = sw_solution(small_app, small_arch)
        before = len(small_arch)
        move = CreateResourceMove(
            task=0, factory=lambda name: Asic(name), prefix="asic"
        )
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)
        assert len(small_arch) == before
        s.validate()

    def test_remove_singleton_resource(self, small_app, small_arch, rng):
        small_arch.add_resource(Processor("cpu2"))
        s = Solution(small_app, small_arch)
        for t in (0, 1, 2, 4, 5):
            s.assign_to_processor(t, "cpu")
        s.assign_to_processor(3, "cpu2")
        s.spawn_context(1, "fpga")  # fpga occupied twice: not removable
        s.assign_to_context(2, "fpga", 0)
        move = RemoveResourceMove(dest_task=4, rng=rng)
        move.apply(s)
        assert "cpu2" not in small_arch
        assert s.resource_name_of(3) == "cpu"
        move.undo(s)
        assert "cpu2" in small_arch
        assert s.resource_name_of(3) == "cpu2"
        s.validate()

    def test_remove_empty_resource_directly(self, small_app, small_arch, rng):
        """A drained resource (here the unused fpga) is removable
        without rehoming any task."""
        s = sw_solution(small_app, small_arch)
        move = RemoveResourceMove(dest_task=0, rng=rng)
        move.apply(s)
        assert "fpga" not in small_arch
        move.undo(s)
        assert "fpga" in small_arch
        s.validate()

    def test_remove_with_no_candidate_is_infeasible(
        self, small_app, small_arch, rng
    ):
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")  # two hw tasks: fpga not removable
        s.assign_to_context(2, "fpga", 0)
        move = RemoveResourceMove(dest_task=0, rng=rng)
        with pytest.raises(InfeasibleMoveError):
            move.apply(s)

    def test_undo_restores_resource_order_and_fresh_counter(
        self, small_app, small_arch, rng
    ):
        """apply + undo must be side-effect-free on *observable*
        architecture state: the resource enumeration order (m3 re-adds
        the removed resource) and the fresh-name counter (m4).
        Speculative batched evaluation relies on this for its
        batch-size-invariant trajectories."""
        small_arch.add_resource(Processor("cpu2"))
        s = Solution(small_app, small_arch)
        for t in (0, 1, 2, 5):
            s.assign_to_processor(t, "cpu")
        s.assign_to_processor(3, "cpu2")
        s.assign_to_processor(4, "cpu2")
        # Only the (empty) fpga is removable, and it sits in the middle
        # of the enumeration order — a plain re-add would move it last.
        order_before = small_arch.resource_names()
        assert order_before.index("fpga") < len(order_before) - 1
        move = RemoveResourceMove(dest_task=4, rng=rng)
        move.apply(s)
        assert "fpga" not in small_arch
        move.undo(s)
        assert small_arch.resource_names() == order_before

        counter_before = small_arch._fresh_counter
        create = CreateResourceMove(
            task=2, factory=lambda name: Processor(name), prefix="cpu",
            rng=random.Random(3),
        )
        create.apply(s)
        created = s.resource_name_of(2)
        create.undo(s)
        # RNG-drawn names leave the shared fresh-name counter untouched,
        # and the architecture is exactly as before.
        assert small_arch._fresh_counter == counter_before
        assert small_arch.resource_names() == order_before
        # Replay (tabu / batched re-acceptance) recreates the same name.
        create.apply(s)
        assert s.resource_name_of(2) == created
        create.undo(s)
        # A *different* move draws a different name: no name reuse, the
        # uniqueness invariant the engine caches rely on.
        other = CreateResourceMove(
            task=2, factory=lambda name: Processor(name), prefix="cpu",
            rng=random.Random(4),
        )
        other.apply(s)
        assert s.resource_name_of(2) != created
        other.undo(s)


class TestMoveGenerator:
    def test_validation(self, small_app):
        with pytest.raises(ConfigurationError):
            MoveGenerator(small_app, p_zero=1.0)
        with pytest.raises(ConfigurationError):
            MoveGenerator(small_app, p_impl=-0.1)
        with pytest.raises(ConfigurationError):
            MoveGenerator(small_app, p_zero=0.2)  # no catalog

    def test_generates_all_core_kinds(self, small_app, small_arch):
        generator = MoveGenerator(small_app, p_impl=0.2, p_offload=0.2)
        rng = random.Random(0)
        s = sw_solution(small_app, small_arch)
        s.spawn_context(1, "fpga")
        seen = set()
        for _ in range(500):
            try:
                move = generator.propose(s, rng)
            except InfeasibleMoveError:
                continue
            seen.add(move.name)
        assert {"m1_reorder", "m2_reassign", "m_impl", "m_offload"} <= seen

    def test_architecture_moves_require_p_zero(self, small_app, small_arch):
        generator = MoveGenerator(
            small_app,
            p_zero=0.5,
            catalog=[lambda name: Processor(name)],
        )
        rng = random.Random(3)
        s = sw_solution(small_app, small_arch)
        names = set()
        for _ in range(300):
            try:
                names.add(generator.propose(s, rng).name)
            except InfeasibleMoveError:
                continue
        assert "m4_create_resource" in names

    def test_stats_counters(self):
        stats = MoveStats()
        stats.record_proposed("x")
        stats.record_accepted("x")
        stats.record_rejected("x")
        stats.record_infeasible("y")
        text = stats.summary()
        assert "x:" in text and "y:" in text


class TestUndoProperty:
    """The backbone invariant: apply + undo restores the exact state."""

    def _state(self, solution):
        return snapshot_solution(solution)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_apply_undo_roundtrip_small(self, seed):
        # Build everything inside: hypothesis forbids function-scoped
        # fixtures with non-reset state.
        from tests.conftest import (  # noqa: WPS433 - test helper reuse
            make_impls,
        )
        from repro.arch.architecture import Architecture
        from repro.arch.bus import Bus
        from repro.model.application import Application
        from repro.model.task import Task

        app = Application("prop")
        app.add_task(Task(0, "a", "F", 2.0))
        app.add_task(Task(1, "b", "F", 3.0, make_impls((50, 0.5), (90, 0.3))))
        app.add_task(Task(2, "c", "F", 1.0, make_impls((40, 0.4))))
        app.add_task(Task(3, "d", "F", 2.0, make_impls((60, 0.6), (99, 0.2))))
        app.add_dependency(0, 1, 2.0)
        app.add_dependency(0, 2, 2.0)
        app.add_dependency(1, 3, 1.0)
        app.add_dependency(2, 3, 1.0)

        arch = Architecture("prop_arch", bus=Bus())
        arch.add_resource(Processor("cpu"))
        arch.add_resource(ReconfigurableCircuit("fpga", n_clbs=120))

        rng = random.Random(seed)
        solution = random_initial_solution(app, arch, rng)
        generator = MoveGenerator(app, p_impl=0.2, p_offload=0.2)
        for _ in range(15):
            before = self._state(solution)
            try:
                move = generator.propose(solution, rng)
                move.apply(solution)
            except InfeasibleMoveError:
                assert self._state(solution) == before
                continue
            solution.validate()
            move.undo(solution)
            assert self._state(solution) == before
            solution.validate()

    def test_apply_undo_roundtrip_motion(self, motion_app, epicure):
        rng = random.Random(5)
        solution = random_initial_solution(motion_app, epicure, rng)
        generator = MoveGenerator(motion_app, p_impl=0.2, p_offload=0.2)
        evaluator = Evaluator(motion_app, epicure)
        for _ in range(300):
            before = snapshot_solution(solution)
            try:
                move = generator.propose(solution, rng)
                move.apply(solution)
            except InfeasibleMoveError:
                assert snapshot_solution(solution) == before
                continue
            move.undo(solution)
            assert snapshot_solution(solution) == before
        assert evaluator.evaluate(solution).feasible
