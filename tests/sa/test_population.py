"""Determinism contract of the population annealer.

Three pins, in increasing strength:

* ``chains=1`` (no exchange possible) is **bit-identical** to the
  ``"sa"`` strategy — same seed in, same trajectory out, down to the
  per-iteration trace.
* Replica exchange replays: a fixed ``(seed, chains, ladder)`` gives
  the identical run every time, including the swap bookkeeping.
* Runner fan-out (``jobs=N``) returns the same bits as inline
  execution.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mapping.evaluator import ENGINES, Evaluator
from repro.sa.explorer import DesignSpaceExplorer
from repro.sa.population import PopulationAnnealer

ITERATIONS = 120
WARMUP = 30


def make_population(app, arch, seed, chains=3, engine="array", **kwargs):
    kwargs.setdefault("iterations", ITERATIONS)
    kwargs.setdefault("warmup_iterations", WARMUP)
    kwargs.setdefault("swap_interval", 5)
    return PopulationAnnealer(
        app, arch, chains=chains, seed=seed, engine=engine, **kwargs
    )


class TestSingleChainBitIdentity:
    """chains=1 *is* the sequential annealer."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_matches_the_sa_strategy(self, engine, small_app, small_arch):
        sa = DesignSpaceExplorer(
            small_app, small_arch, iterations=ITERATIONS,
            warmup_iterations=WARMUP, seed=5, engine=engine,
        ).search()
        pop = make_population(
            small_app, small_arch, 5, chains=1, engine=engine
        ).search()
        assert pop.best_cost == sa.best_cost
        assert pop.final_cost == sa.final_cost
        assert pop.history == sa.history
        assert pop.iterations_run == sa.iterations_run
        assert pop.evaluations == sa.evaluations
        assert [
            (r.iteration, r.temperature, r.current_cost, r.best_cost,
             r.accepted, r.move_name)
            for r in pop.trace
        ] == [
            (r.iteration, r.temperature, r.current_cost, r.best_cost,
             r.accepted, r.move_name)
            for r in sa.trace
        ]

    def test_matches_from_a_shared_initial(self, small_app, small_arch):
        from repro.mapping.solution import random_initial_solution
        import random

        initial = random_initial_solution(
            small_app, small_arch, random.Random(99)
        )
        sa = DesignSpaceExplorer(
            small_app, small_arch, iterations=ITERATIONS,
            warmup_iterations=WARMUP, seed=5,
        ).search(initial.copy())
        pop = make_population(small_app, small_arch, 5, chains=1).search(
            initial.copy()
        )
        assert pop.best_cost == sa.best_cost
        assert pop.history == sa.history


class TestExchangeDeterminism:
    def test_fixed_seed_replays_exactly(self, small_app, small_arch):
        a = make_population(small_app, small_arch, 13).search()
        b = make_population(small_app, small_arch, 13).search()
        assert a.best_cost == b.best_cost
        assert a.history == b.history
        assert a.extras["swap_attempts"] == b.extras["swap_attempts"]
        assert a.extras["swap_accepts"] == b.extras["swap_accepts"]
        assert a.extras["chain_costs"] == b.extras["chain_costs"]
        assert a.extras["slot_of_chain"] == b.extras["slot_of_chain"]

    def test_exchange_happens_and_is_bookkept(self, small_app, small_arch):
        result = make_population(
            small_app, small_arch, 13, chains=4, swap_interval=3
        ).search()
        extras = result.extras
        assert extras["chains"] == 4
        assert extras["swap_attempts"] >= 1
        assert 0 <= extras["swap_accepts"] <= extras["swap_attempts"]
        assert sorted(extras["slot_of_chain"]) == [0, 1, 2, 3]
        assert len(extras["chain_costs"]) == 4

    def test_swap_interval_none_disables_exchange(
        self, small_app, small_arch
    ):
        result = make_population(
            small_app, small_arch, 13, swap_interval=None
        ).search()
        assert result.extras["swap_attempts"] == 0
        assert result.extras["slot_of_chain"] == [0, 1, 2]

    def test_best_cost_matches_reference_reevaluation(
        self, small_app, small_arch
    ):
        result = make_population(small_app, small_arch, 17).search()
        fresh = Evaluator(small_app, small_arch, engine="full")
        assert fresh.makespan_ms(result.best_solution) == result.best_cost


class TestRunnerFanOut:
    def _jobs(self, app, arch):
        from repro.search.runner import InstanceSpec, SearchJob, StrategySpec

        spec = StrategySpec("tempering", {
            "chains": 2, "iterations": 40, "warmup_iterations": 10,
            "swap_interval": 5, "keep_trace": False,
        })
        instance = InstanceSpec(app, architecture=arch)
        return [
            SearchJob(spec, instance, seed=31, tag="a"),
            SearchJob(spec, instance, seed=32, tag="b"),
        ]

    def test_parallel_equals_inline(self, small_app, small_arch):
        from repro.search.runner import run_search_jobs

        inline = run_search_jobs(self._jobs(small_app, small_arch), jobs=1)
        pooled = run_search_jobs(self._jobs(small_app, small_arch), jobs=2)
        for a, b in zip(inline, pooled):
            assert a.result.best_cost == b.result.best_cost
            assert a.result.history == b.result.history
            assert a.result.iterations_run == b.result.iterations_run


class TestValidation:
    def test_rejects_zero_chains(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="chains"):
            PopulationAnnealer(small_app, small_arch, chains=0)

    def test_rejects_negative_swap_interval(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="swap_interval"):
            PopulationAnnealer(small_app, small_arch, swap_interval=-1)

    def test_rejects_non_positive_ladder(self, small_app, small_arch):
        with pytest.raises(ConfigurationError, match="ladder_ratio"):
            PopulationAnnealer(small_app, small_arch, ladder_ratio=0.0)


def trajectory(result):
    return (
        result.best_cost,
        result.final_cost,
        result.iterations_run,
        result.evaluations,
        tuple(result.history),
        tuple(
            (r.iteration, r.temperature, r.current_cost, r.best_cost,
             r.num_contexts, r.accepted, r.move_name)
            for r in result.trace
        ),
    )


class TestDispatchBitIdentity:
    """The depth-aware dispatcher changes throughput, never results:
    every dispatch mode of the array engine — and every engine — walks
    the identical trajectory for a fixed seed, including the persistent
    commit-on-accept path vs the fused kernel path."""

    def test_all_dispatch_modes_and_engines_agree(
        self, small_app, small_arch
    ):
        reference = trajectory(
            make_population(
                small_app, small_arch, 5, engine="incremental"
            ).search()
        )
        for engine in (
            "full",
            {"kind": "array", "dispatch": "auto"},
            {"kind": "array", "dispatch": "kernel"},
            {"kind": "array", "dispatch": "scalar"},
        ):
            got = trajectory(
                make_population(
                    small_app, small_arch, 5, engine=engine
                ).search()
            )
            assert got == reference, engine
