"""Tests for the high-level DesignSpaceExplorer API."""

import pytest

from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.errors import ConfigurationError
from repro.mapping.cost import SystemCost
from repro.sa.explorer import DesignSpaceExplorer


class TestBasicRun:
    def test_end_to_end_small(self, small_app, small_arch):
        explorer = DesignSpaceExplorer(
            small_app, small_arch, iterations=300, warmup_iterations=60,
            seed=5,
        )
        result = explorer.run()
        assert result.best_evaluation.feasible
        assert (
            result.best_evaluation.makespan_ms
            <= result.initial_evaluation.makespan_ms
        )
        assert result.runtime_s > 0.0
        assert len(result.trace) == 300

    def test_schedule_extraction(self, small_app, small_arch):
        explorer = DesignSpaceExplorer(
            small_app, small_arch, iterations=200, warmup_iterations=50,
            seed=2,
        )
        result = explorer.run()
        schedule = result.schedule(explorer.evaluator)
        assert schedule.makespan_ms == pytest.approx(
            result.best_evaluation.makespan_ms
        )

    def test_custom_schedule_name(self, small_app, small_arch):
        for name in ("lam", "modified_lam", "geometric"):
            explorer = DesignSpaceExplorer(
                small_app, small_arch, iterations=150, warmup_iterations=30,
                seed=1, schedule_name=name,
            )
            result = explorer.run()
            assert result.best_evaluation.feasible

    def test_bad_schedule_name(self, small_app, small_arch):
        with pytest.raises(ConfigurationError):
            DesignSpaceExplorer(
                small_app, small_arch, schedule_name="volcanic"
            )


class TestInterruptible:
    def test_stop_predicate(self, small_app, small_arch):
        explorer = DesignSpaceExplorer(
            small_app, small_arch, iterations=5000, warmup_iterations=100,
            seed=4,
        )
        result = explorer.run_interruptible(
            stop=lambda r: r.iterations_run >= 123
        )
        assert result.annealing.iterations_run == 123
        assert result.best_evaluation.feasible


class TestArchitectureExploration:
    def test_m3_m4_with_system_cost(self, small_app, small_arch):
        """The paper's general mode: explore the resource set itself."""
        catalog = [
            lambda name: Processor(name, monetary_cost=1.0),
            lambda name: Asic(name, monetary_cost=5.0),
        ]
        explorer = DesignSpaceExplorer(
            small_app,
            small_arch,
            iterations=600,
            warmup_iterations=100,
            seed=9,
            p_zero=0.1,
            catalog=catalog,
            cost_function=SystemCost(deadline_ms=30.0, penalty_per_ms=10.0),
        )
        result = explorer.run()
        assert result.best_evaluation.feasible
        result.best_solution.validate()
        # the best architecture still contains at least one processor
        assert result.best_solution.architecture.processors()
