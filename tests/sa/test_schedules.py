"""Tests for the cooling schedules."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sa.schedules import (
    GeometricSchedule,
    LamDelosmeSchedule,
    ModifiedLamSchedule,
    lam_quality_factor,
    make_schedule,
)


class TestQualityFactor:
    def test_zero_at_extremes(self):
        assert lam_quality_factor(0.0) == 0.0
        assert lam_quality_factor(1.0) == 0.0

    def test_peaks_near_044(self):
        values = {a: lam_quality_factor(a) for a in (0.1, 0.44, 0.9)}
        assert values[0.44] > values[0.1]
        assert values[0.44] > values[0.9]

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            lam_quality_factor(1.5)


class TestLamDelosme:
    def test_infinite_before_begin(self):
        schedule = LamDelosmeSchedule()
        assert math.isinf(schedule.temperature)

    def test_record_before_begin_rejected(self):
        with pytest.raises(ConfigurationError):
            LamDelosmeSchedule().record(1.0, True)

    def test_temperature_decreases_monotonically(self):
        schedule = LamDelosmeSchedule(lambda_rate=0.1)
        schedule.begin([50.0, 60.0, 40.0, 55.0, 45.0])
        temps = [schedule.temperature]
        for k in range(500):
            schedule.record(50.0 + (k % 7), accepted=(k % 2 == 0))
            temps.append(schedule.temperature)
        assert all(b <= a for a, b in zip(temps, temps[1:]))
        assert temps[-1] < temps[0]

    def test_sigma_floor_prevents_instant_quench(self):
        schedule = LamDelosmeSchedule(lambda_rate=0.1)
        schedule.begin([50.0, 60.0, 40.0])
        for _ in range(200):
            schedule.record(50.0, accepted=True)  # zero variance stream
        assert schedule.temperature > 0.0
        assert schedule.sigma_estimate >= 1e-9

    def test_acceptance_estimate_tracks(self):
        schedule = LamDelosmeSchedule(smoothing=0.5)
        schedule.begin([10.0, 20.0])
        for _ in range(50):
            schedule.record(15.0, accepted=False)
        assert schedule.acceptance_estimate < 0.05
        assert schedule.frozen()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LamDelosmeSchedule(lambda_rate=0)
        with pytest.raises(ConfigurationError):
            LamDelosmeSchedule(smoothing=0)
        with pytest.raises(ConfigurationError):
            LamDelosmeSchedule(initial_acceptance=1.0)


class TestModifiedLam:
    def test_target_trajectory_shape(self):
        schedule = ModifiedLamSchedule(horizon=1000)
        start = schedule.target_acceptance(0)
        plateau = schedule.target_acceptance(400)
        tail = schedule.target_acceptance(999)
        assert start == pytest.approx(1.0)
        assert plateau == pytest.approx(0.44)
        assert tail < 0.01

    def test_cools_when_acceptance_exceeds_target(self):
        schedule = ModifiedLamSchedule(horizon=500)
        schedule.begin([10.0, 30.0, 20.0])
        t0 = schedule.temperature
        for _ in range(500):
            schedule.record(20.0, accepted=True)  # measured 1.0 >= target
        assert schedule.temperature < t0

    def test_heats_when_acceptance_below_target(self):
        schedule = ModifiedLamSchedule(horizon=500)
        schedule.begin([10.0, 30.0, 20.0])
        t0 = schedule.temperature
        for _ in range(50):  # early phase targets ~1.0
            schedule.record(20.0, accepted=False)
        assert schedule.temperature > t0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModifiedLamSchedule(horizon=0)
        with pytest.raises(ConfigurationError):
            ModifiedLamSchedule(horizon=10, adjust=1.0)

    def test_record_before_begin(self):
        with pytest.raises(ConfigurationError):
            ModifiedLamSchedule(horizon=10).record(1.0, True)


class TestGeometric:
    def test_plateau_steps(self):
        schedule = GeometricSchedule(alpha=0.5, plateau=10, t0=100.0)
        schedule.begin([1.0, 2.0])
        assert schedule.temperature == 100.0
        for _ in range(10):
            schedule.record(1.0, True)
        assert schedule.temperature == pytest.approx(50.0)
        for _ in range(10):
            schedule.record(1.0, True)
        assert schedule.temperature == pytest.approx(25.0)

    def test_t0_from_warmup_spread(self):
        schedule = GeometricSchedule()
        schedule.begin([0.0, 10.0])
        assert schedule.temperature > 0.0
        assert math.isfinite(schedule.temperature)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeometricSchedule(alpha=1.5)
        with pytest.raises(ConfigurationError):
            GeometricSchedule(plateau=0)
        with pytest.raises(ConfigurationError):
            GeometricSchedule(t0=-1.0)


class TestFactory:
    def test_names(self):
        assert isinstance(make_schedule("lam"), LamDelosmeSchedule)
        assert isinstance(make_schedule("adaptive"), LamDelosmeSchedule)
        assert isinstance(
            make_schedule("modified_lam", horizon=100), ModifiedLamSchedule
        )
        assert isinstance(make_schedule("geometric"), GeometricSchedule)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_schedule("boiling")
