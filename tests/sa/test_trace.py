"""Tests for trace records, CSV export, downsampling."""

import io
import math

import pytest

from repro.sa.trace import CSV_HEADER, TraceRecord, downsample, write_csv


def rec(i, cost=10.0, temp=1.0):
    return TraceRecord(
        iteration=i, temperature=temp, current_cost=cost, best_cost=cost,
        num_contexts=2, accepted=True, move_name="m2_reassign",
    )


class TestCsv:
    def test_header_and_rows(self):
        stream = io.StringIO()
        write_csv([rec(1), rec(2, cost=9.5)], stream)
        lines = stream.getvalue().strip().splitlines()
        assert lines[0] == CSV_HEADER
        assert lines[1].startswith("1,1,10,")
        assert len(lines) == 3

    def test_infinite_temperature_serialized(self):
        stream = io.StringIO()
        write_csv([rec(1, temp=math.inf)], stream)
        assert ",inf," in stream.getvalue().splitlines()[1]


class TestDownsample:
    def test_keeps_every_nth_plus_last(self):
        records = [rec(i) for i in range(1, 11)]
        kept = downsample(records, every=3)
        assert [r.iteration for r in kept] == [1, 4, 7, 10]

    def test_last_always_included(self):
        records = [rec(i) for i in range(1, 6)]
        kept = downsample(records, every=2)
        assert kept[-1].iteration == 5

    def test_every_one_is_identity(self):
        records = [rec(i) for i in range(1, 4)]
        assert downsample(records, every=1) == records

    def test_empty(self):
        assert downsample([], every=5) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            downsample([rec(1)], every=0)
