"""Batched neighborhood evaluation: trajectory equivalence + defaults.

The batched annealer speculatively proposes K candidates per round and
scores them through ``evaluate_batch``; an acceptance discards the rest
of the batch and re-proposes their iteration indices from the new
state.  Because every iteration index owns a private seed-derived RNG
stream, the trajectory must be *identical for every batch size* — the
knob buys throughput, never a different experiment.  The default
(``batch_size=None``) must keep the historical sequential loop
bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.arch.architecture import epicure_architecture
from repro.errors import ConfigurationError
from repro.mapping.evaluator import ENGINES
from repro.model.motion import motion_detection_application
from repro.sa.annealer import AnnealerConfig
from repro.sa.explorer import DesignSpaceExplorer

ITERATIONS = 300
WARMUP = 80


def run(batch_size, engine="array", seed=11, force_kernel=False):
    explorer = DesignSpaceExplorer(
        motion_detection_application(),
        epicure_architecture(n_clbs=2000),
        iterations=ITERATIONS,
        warmup_iterations=WARMUP,
        seed=seed,
        engine=engine,
        batch_size=batch_size,
    )
    if force_kernel:
        explorer.evaluator.engine.KERNEL_BATCH_MIN_WORK = 0
    return explorer.search()


def trajectory(result):
    return (
        result.best_cost,
        result.final_cost,
        result.iterations_run,
        tuple(result.history),
        tuple(
            (r.iteration, r.current_cost, r.accepted, r.move_name)
            for r in result.trace
        ),
    )


def test_batch_size_invariance():
    """batch_size > 1 vs batch_size = 1: identical trajectories for a
    fixed seed (the acceptance criterion of the batched-evaluation
    design)."""
    reference = trajectory(run(batch_size=1))
    for batch_size in (2, 4, 9):
        assert trajectory(run(batch_size=batch_size)) == reference, batch_size


def test_batched_trajectory_is_engine_invariant():
    """Engine parity extends to the batched path: the kernel-scored
    trajectory equals the per-move scalar-scored one."""
    reference = None
    for engine in ENGINES:
        key = trajectory(run(batch_size=3, engine=engine))
        if reference is None:
            reference = key
        else:
            assert key == reference, engine
    # ...and forcing the NumPy frontier kernels (normally reserved for
    # batches past the dispatch-amortization crossover) changes nothing.
    assert trajectory(run(batch_size=3, force_kernel=True)) == reference


def test_default_is_the_historical_loop():
    """batch_size=None (the default) keeps the legacy sequential RNG
    discipline bit-for-bit, regardless of engine."""
    legacy = trajectory(run(batch_size=None, engine="incremental"))
    assert trajectory(run(batch_size=None, engine="array")) == legacy


def test_batched_speculation_costs_extra_evaluations():
    """Speculation is visible (and only visible) in the evaluation
    counter: bigger batches evaluate at least as many candidates."""
    small = run(batch_size=1)
    large = run(batch_size=8)
    assert large.evaluations >= small.evaluations
    assert trajectory(large) == trajectory(small)


def test_batch_size_invariance_with_architecture_moves():
    """Speculative apply/undo must be side-effect-free even for the
    architecture moves m3/m4 (resource enumeration order and the
    fresh-name counter are observable state): batched trajectories stay
    batch-size-invariant with p_zero > 0."""
    from repro.arch.processor import Processor
    from repro.arch.reconfigurable import ReconfigurableCircuit

    def run_arch(batch_size, seed=11):
        catalog = [
            lambda name: Processor(name, speed_factor=1.2, monetary_cost=1.0),
            lambda name: ReconfigurableCircuit(
                name, n_clbs=600, monetary_cost=2.0
            ),
        ]
        explorer = DesignSpaceExplorer(
            motion_detection_application(),
            epicure_architecture(n_clbs=2000),
            iterations=ITERATIONS,
            warmup_iterations=WARMUP,
            seed=seed,
            engine="array",
            batch_size=batch_size,
            p_zero=0.25,
            catalog=catalog,
        )
        return explorer.search()

    reference = trajectory(run_arch(batch_size=1))
    for batch_size in (2, 4, 8):
        assert trajectory(run_arch(batch_size)) == reference, batch_size


def test_batch_size_validation():
    with pytest.raises(ConfigurationError):
        AnnealerConfig(iterations=10, warmup_iterations=2,
                       batch_size=0).validate()
    AnnealerConfig(iterations=10, warmup_iterations=2,
                   batch_size=3).validate()
