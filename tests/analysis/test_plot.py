"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis.plot import ascii_plot, plot_sweep, plot_trace
from repro.analysis.sweep import DeviceSweepRow
from repro.errors import ConfigurationError
from repro.sa.trace import TraceRecord


class TestAsciiPlot:
    def test_basic_series(self):
        text = ascii_plot(
            [("line", [(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)])],
            width=30, height=8, x_label="x",
        )
        assert "*" in text
        assert "line" in text
        assert "x" in text

    def test_multiple_series_use_distinct_glyphs(self):
        text = ascii_plot(
            [
                ("a", [(0.0, 0.0), (1.0, 1.0)]),
                ("b", [(0.0, 1.0), (1.0, 0.0)]),
            ],
            width=20, height=6,
        )
        assert "*" in text and "o" in text

    def test_empty(self):
        assert ascii_plot([("x", [])]) == "(no data)"

    def test_constant_series(self):
        text = ascii_plot([("flat", [(0.0, 5.0), (1.0, 5.0)])], width=20, height=5)
        assert "*" in text

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([("a", [(0, 0)])], width=5, height=2)


class TestTracePlot:
    def test_renders(self):
        trace = [
            TraceRecord(i, 1.0, 50.0 - i * 0.1, 40.0, 1 + i % 3, True, "m")
            for i in range(1, 101)
        ]
        text = plot_trace(trace)
        assert "execution time" in text
        assert "contexts" in text
        assert "iteration" in text

    def test_empty(self):
        assert plot_trace([]) == "(empty trace)"


class TestSweepPlot:
    def test_renders(self):
        rows = [
            DeviceSweepRow(
                n_clbs=s, runs=1, execution_ms=30.0 + s / 1000,
                execution_std_ms=0.0, initial_reconfig_ms=5.0,
                dynamic_reconfig_ms=10.0, num_contexts=4.0, hw_tasks=10.0,
                feasible_fraction=1.0,
            )
            for s in (200, 800, 2000)
        ]
        text = plot_sweep(rows)
        assert "reconfiguration" in text
        assert "device size" in text

    def test_empty(self):
        assert plot_sweep([]) == "(empty sweep)"
