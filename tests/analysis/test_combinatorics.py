"""Tests for solution-space counting — anchored on the paper's numbers."""

import itertools
from math import comb, factorial

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.combinatorics import (
    chain_interleavings,
    context_placements,
    count_linear_extensions,
    solution_space_report,
)
from repro.errors import GraphError
from repro.graph.dag import Dag
from repro.graph.generators import chain, fork_join, parallel_chains


def brute_force_extensions(dag):
    nodes = list(dag.nodes())
    edges = [(a, b) for a, b, _ in dag.edges()]
    count = 0
    for perm in itertools.permutations(nodes):
        pos = {n: i for i, n in enumerate(perm)}
        if all(pos[a] < pos[b] for a, b in edges):
            count += 1
    return count


class TestLinearExtensions:
    def test_chain_has_one_order(self):
        assert count_linear_extensions(chain(6)) == 1

    def test_antichain_is_factorial(self):
        dag = Dag()
        for n in range(5):
            dag.add_node(n)
        assert count_linear_extensions(dag) == factorial(5)

    def test_diamond(self):
        assert count_linear_extensions(fork_join(2)) == 2

    def test_parallel_chains_closed_form(self):
        dag = parallel_chains([3, 4])
        assert count_linear_extensions(dag) == chain_interleavings([3, 4])

    def test_matches_brute_force_on_small_graphs(self):
        from repro.graph.generators import random_dag
        for seed in range(4):
            dag = random_dag(6, edge_probability=0.35, seed=seed)
            assert count_linear_extensions(dag) == brute_force_extensions(dag)

    def test_node_limit_guard(self):
        dag = Dag()
        for n in range(45):
            dag.add_node(n)
        with pytest.raises(GraphError):
            count_linear_extensions(dag)


class TestClosedForms:
    def test_interleavings(self):
        assert chain_interleavings([7, 6]) == comb(13, 6) == 1716
        assert chain_interleavings([2, 1]) == 3
        assert chain_interleavings([5]) == 1
        assert chain_interleavings([]) == 1

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            chain_interleavings([-1])

    def test_context_placements(self):
        assert context_placements(28, 2) == 378
        assert context_placements(28, 6) == 376_740
        assert context_placements(28, 0) == 1
        with pytest.raises(GraphError):
            context_placements(-1, 0)


class TestPaperReport:
    def test_motion_detection_numbers(self, motion_app):
        report = solution_space_report(motion_app, context_changes=(2, 4, 6))
        assert report.total_orders == 348_840
        assert report.placements[2] == 378
        assert report.combinations[2] == 131_861_520
        assert report.combinations[4] == 7_142_499_000

    def test_table_formatting(self, motion_app):
        report = solution_space_report(motion_app)
        text = report.format_table()
        assert "348,840" in text
        assert "131,861,520" in text


@given(lengths=st.lists(st.integers(1, 4), min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_property_parallel_chains_match_multinomial(lengths):
    dag = parallel_chains(lengths)
    if len(dag) <= 12:
        assert count_linear_extensions(dag) == chain_interleavings(lengths)
