"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    Summary,
    confidence_interval95,
    mean,
    median,
    std,
    summarize,
)
from repro.errors import ConfigurationError


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_std_single_sample(self):
        assert std([5.0]) == 0.0

    def test_std_known_value(self):
        assert std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_empty_rejected(self):
        for fn in (mean, std, median, summarize):
            with pytest.raises(ConfigurationError):
                fn([])


class TestCI:
    def test_single_sample_degenerates(self):
        assert confidence_interval95([4.0]) == (4.0, 4.0)

    def test_contains_mean(self):
        lo, hi = confidence_interval95([1.0, 2.0, 3.0, 4.0])
        assert lo < 2.5 < hi


class TestSummary:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == Summary(3, 2.0, 1.0, 1.0, 2.0, 3.0)

    def test_format(self):
        text = summarize([1.0, 2.0]).format("ms")
        assert "mean=1.50 ms" in text
