"""Device-sweep parallelism: jobs=N must not change a single row."""

import pytest

from repro.analysis.sweep import run_device_sweep
from repro.errors import ConfigurationError


SWEEP_KWARGS = dict(
    sizes=(300, 600), runs=2, iterations=120, warmup_iterations=30, seed0=3
)


class TestParallelSweep:
    def test_rows_bit_identical_across_job_counts(self, small_app):
        sequential = run_device_sweep(small_app, jobs=1, **SWEEP_KWARGS)
        parallel = run_device_sweep(small_app, jobs=2, **SWEEP_KWARGS)
        assert sequential == parallel  # frozen dataclass field equality

    def test_checkpoint_resume_gives_same_rows(self, small_app, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        fresh = run_device_sweep(
            small_app, jobs=1, checkpoint_path=path, **SWEEP_KWARGS
        )
        resumed = run_device_sweep(
            small_app, jobs=1, checkpoint_path=path, **SWEEP_KWARGS
        )
        assert fresh == resumed

    def test_explorer_factory_is_sequential_only(self, small_app):
        with pytest.raises(ConfigurationError):
            run_device_sweep(
                small_app,
                sizes=(300,),
                runs=1,
                explorer_factory=lambda n, s: None,
                jobs=2,
            )
