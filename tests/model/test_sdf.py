"""Tests for the SDF front end (repetition vectors, liveness, unfolding)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.model.sdf import SdfActor, SdfChannel, SdfGraph
from repro.model.task import Implementation


def simple_graph(p=2, c=3, delay=0):
    g = SdfGraph("g")
    g.add_actor(SdfActor("a", "F", 1.0))
    g.add_actor(SdfActor("b", "F", 2.0))
    g.add_channel(SdfChannel("a", "b", p, c, initial_tokens=delay,
                             token_kbytes=1.0))
    return g


class TestConstruction:
    def test_duplicate_actor(self):
        g = SdfGraph("g")
        g.add_actor(SdfActor("a", "F", 1.0))
        with pytest.raises(ModelError):
            g.add_actor(SdfActor("a", "F", 2.0))

    def test_unknown_endpoint(self):
        g = SdfGraph("g")
        g.add_actor(SdfActor("a", "F", 1.0))
        with pytest.raises(ModelError):
            g.add_channel(SdfChannel("a", "zz", 1, 1))

    def test_bad_rates(self):
        with pytest.raises(ModelError):
            SdfChannel("a", "b", 0, 1)
        with pytest.raises(ModelError):
            SdfChannel("a", "b", 1, 1, initial_tokens=-1)


class TestRepetitionVector:
    def test_classic_2_3(self):
        assert simple_graph(2, 3).repetition_vector() == {"a": 3, "b": 2}

    def test_homogeneous(self):
        assert simple_graph(1, 1).repetition_vector() == {"a": 1, "b": 1}

    def test_three_actor_chain(self):
        g = SdfGraph("g")
        for name in "abc":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 3, 2))
        g.add_channel(SdfChannel("b", "c", 1, 2))
        # q(a)*3 = q(b)*2, q(b)*1 = q(c)*2 -> q = (2, 3, 1)*k minimal?
        # q(b)=3 -> q(a)=2, q(c)=3/2 -> scale: q=(4, 6, 3)
        assert g.repetition_vector() == {"a": 4, "b": 6, "c": 3}

    def test_inconsistent_rejected(self):
        g = SdfGraph("g")
        for name in "ab":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 1, 1))
        g.add_channel(SdfChannel("a", "b", 2, 1))  # contradicts the first
        with pytest.raises(ModelError):
            g.repetition_vector()
        assert not g.is_consistent()

    def test_disconnected_components(self):
        g = SdfGraph("g")
        for name in "abcd":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 2, 1))
        g.add_channel(SdfChannel("c", "d", 1, 3))
        vec = g.repetition_vector()
        assert vec["a"] * 2 == vec["b"]
        assert vec["c"] == vec["d"] * 3

    def test_empty_graph_rejected(self):
        with pytest.raises(ModelError):
            SdfGraph("empty").repetition_vector()


class TestLiveness:
    def test_acyclic_is_live(self):
        simple_graph().check_live()

    def test_cycle_without_tokens_deadlocks(self):
        g = SdfGraph("g")
        for name in "ab":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 1, 1))
        g.add_channel(SdfChannel("b", "a", 1, 1))  # no initial tokens
        with pytest.raises(ModelError):
            g.check_live()

    def test_cycle_with_tokens_is_live(self):
        g = SdfGraph("g")
        for name in "ab":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 1, 1))
        g.add_channel(SdfChannel("b", "a", 1, 1, initial_tokens=1))
        g.check_live()


class TestUnfolding:
    def test_instance_counts(self):
        app = simple_graph(2, 3).unfold()
        names = {t.name for t in app.tasks()}
        assert names == {"a#0", "a#1", "a#2", "b#0", "b#1"}

    def test_precedence_rates(self):
        app = simple_graph(2, 3).unfold()
        a = {t.name: t.index for t in app.tasks()}
        # b#0 needs 3 tokens -> after a#1 (2 firings produce 4)
        assert app.precedes(a["a#1"], a["b#0"])
        # b#1 needs 6 tokens -> after a#2
        assert app.precedes(a["a#2"], a["b#1"])
        # b#0 must NOT wait for a#2
        assert not app.dag.has_edge(a["a#2"], a["b#0"])

    def test_initial_tokens_relax_dependencies(self):
        app = simple_graph(2, 3, delay=3).unfold()
        a = {t.name: t.index for t in app.tasks()}
        # b#0's 3 tokens come from the delay: no producer edge at all
        preds = set(app.predecessors(a["b#0"]))
        assert preds <= {a["b#1"]} or preds == set()

    def test_sequential_firings_chain(self):
        app = simple_graph(2, 3).unfold()
        a = {t.name: t.index for t in app.tasks()}
        assert app.dag.has_edge(a["a#0"], a["a#1"])
        assert app.dag.has_edge(a["a#1"], a["a#2"])

    def test_auto_concurrent_firings(self):
        app = simple_graph(2, 3).unfold(sequential_firings=False)
        a = {t.name: t.index for t in app.tasks()}
        assert not app.dag.has_edge(a["a#0"], a["a#1"])

    def test_multiple_iterations(self):
        app = simple_graph(1, 1).unfold(iterations=3)
        assert len(app) == 6

    def test_token_volume_on_edges(self):
        app = simple_graph(2, 3).unfold()
        a = {t.name: t.index for t in app.tasks()}
        assert app.data_kbytes(a["a#1"], a["b#0"]) == pytest.approx(3.0)

    def test_deadlocked_graph_cannot_unfold(self):
        g = SdfGraph("g")
        for name in "ab":
            g.add_actor(SdfActor(name, "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 1, 1))
        g.add_channel(SdfChannel("b", "a", 1, 1))
        with pytest.raises(ModelError):
            g.unfold()

    def test_implementations_propagate(self):
        g = SdfGraph("g")
        impl = (Implementation(50, 0.2),)
        g.add_actor(SdfActor("a", "FIR", 1.0, impl))
        g.add_actor(SdfActor("b", "F", 1.0))
        g.add_channel(SdfChannel("a", "b", 1, 1))
        app = g.unfold()
        assert app.task_by_name("a#0").implementations == impl


class TestEndToEndMapping:
    def test_unfolded_sdf_maps_with_the_explorer(self):
        from repro.arch.architecture import Architecture
        from repro.arch.bus import Bus
        from repro.arch.processor import Processor
        from repro.arch.reconfigurable import ReconfigurableCircuit
        from repro.sa.explorer import DesignSpaceExplorer

        g = SdfGraph("sdr")
        fir = (Implementation(60, 0.3), Implementation(120, 0.15))
        g.add_actor(SdfActor("src", "IO", 0.5))
        g.add_actor(SdfActor("fir", "FIR", 2.0, fir))
        g.add_actor(SdfActor("dec", "F", 1.0))
        g.add_channel(SdfChannel("src", "fir", 2, 1, token_kbytes=4.0))
        g.add_channel(SdfChannel("fir", "dec", 1, 2, token_kbytes=4.0))
        app = g.unfold()

        arch = Architecture("sdr_arch", bus=Bus())
        arch.add_resource(Processor("cpu"))
        arch.add_resource(ReconfigurableCircuit("fpga", n_clbs=200))
        explorer = DesignSpaceExplorer(
            app, arch, iterations=400, warmup_iterations=80, seed=1
        )
        result = explorer.run()
        assert result.best_evaluation.feasible


@given(
    p=st.integers(1, 5),
    c=st.integers(1, 5),
    delay=st.integers(0, 4),
)
@settings(max_examples=60, deadline=None)
def test_property_unfolding_is_rate_correct(p, c, delay):
    """For every consumer firing, the producer instances preceding it
    supply at least the consumed tokens (and the immediately smaller
    count would not)."""
    g = simple_graph(p, c, delay)
    app = g.unfold()
    ids = {t.name: t.index for t in app.tasks()}
    q = g.repetition_vector()
    for j in range(q["b"]):
        consumer = ids[f"b#{j}"]
        direct = [
            src for src in app.predecessors(consumer)
            if app.task(src).name.startswith("a#")
        ]
        needed = (j + 1) * c - delay
        if needed <= 0:
            assert direct == []
            continue
        assert len(direct) == 1
        fired = int(app.task(direct[0]).name.split("#")[1]) + 1
        assert fired * p + delay >= (j + 1) * c
        assert (fired - 1) * p + delay < (j + 1) * c
