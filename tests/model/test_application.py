"""Tests for the Application container."""

import pytest

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.task import Implementation, Task


def make_app():
    app = Application("t")
    app.add_task(Task(0, "a", "F", 1.0))
    app.add_task(Task(1, "b", "F", 2.0, (Implementation(10, 0.5),)))
    app.add_task(Task(2, "c", "F", 3.0))
    app.add_dependency(0, 1, 4.0)
    app.add_dependency(1, 2, 2.0)
    return app


class TestConstruction:
    def test_duplicate_index_rejected(self):
        app = Application("t")
        app.add_task(Task(0, "a", "F", 1.0))
        with pytest.raises(ModelError):
            app.add_task(Task(0, "b", "F", 1.0))

    def test_duplicate_name_rejected(self):
        app = Application("t")
        app.add_task(Task(0, "a", "F", 1.0))
        with pytest.raises(ModelError):
            app.add_task(Task(1, "a", "F", 1.0))

    def test_dependency_unknown_task(self):
        app = make_app()
        with pytest.raises(ModelError):
            app.add_dependency(0, 9)

    def test_negative_volume_rejected(self):
        app = make_app()
        with pytest.raises(ModelError):
            app.add_dependency(0, 2, data_kbytes=-1.0)


class TestQueries:
    def test_lookup(self):
        app = make_app()
        assert app.task(1).name == "b"
        assert app.task_by_name("c").index == 2
        with pytest.raises(ModelError):
            app.task(9)
        with pytest.raises(ModelError):
            app.task_by_name("zz")

    def test_neighbors_and_volumes(self):
        app = make_app()
        assert app.successors(0) == [1]
        assert app.predecessors(2) == [1]
        assert app.data_kbytes(0, 1) == 4.0

    def test_sources_sinks(self):
        app = make_app()
        assert app.sources() == [0]
        assert app.sinks() == [2]

    def test_len_contains(self):
        app = make_app()
        assert len(app) == 3
        assert 1 in app and 9 not in app

    def test_hardware_capable(self):
        app = make_app()
        assert [t.index for t in app.hardware_capable_tasks()] == [1]

    def test_total_sw_time(self):
        assert make_app().total_sw_time_ms() == pytest.approx(6.0)


class TestClosure:
    def test_precedes(self):
        app = make_app()
        assert app.precedes(0, 2)
        assert not app.precedes(2, 0)
        assert not app.precedes(0, 0)

    def test_closure_invalidated_on_new_edge(self):
        app = Application("t")
        app.add_task(Task(0, "a", "F", 1.0))
        app.add_task(Task(1, "b", "F", 1.0))
        assert not app.precedes(0, 1)
        app.add_dependency(0, 1)
        assert app.precedes(0, 1)


class TestValidation:
    def test_valid(self):
        make_app().validate()

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Application("empty").validate()

    def test_cycle_reported(self):
        app = make_app()
        app.dag.add_edge(2, 0)  # bypass add_dependency on purpose
        with pytest.raises(ModelError):
            app.validate()
