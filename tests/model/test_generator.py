"""Tests for the random application generator."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.model.generator import GeneratorConfig, random_application


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(num_tasks=0).validate()
        with pytest.raises(ConfigurationError):
            GeneratorConfig(topology="ring").validate()
        with pytest.raises(ConfigurationError):
            GeneratorConfig(software_only_fraction=1.5).validate()
        with pytest.raises(ConfigurationError):
            GeneratorConfig(min_sw_ms=5.0, max_sw_ms=1.0).validate()


class TestGeneration:
    def test_size_and_validity(self):
        app = random_application(GeneratorConfig(num_tasks=25), seed=1)
        assert len(app) == 25
        app.validate()

    def test_determinism(self):
        a = random_application(GeneratorConfig(num_tasks=15), seed=9)
        b = random_application(GeneratorConfig(num_tasks=15), seed=9)
        assert sorted(a.dependencies()) == sorted(b.dependencies())
        for task in a.tasks():
            assert b.task(task.index).sw_time_ms == task.sw_time_ms

    def test_layered_topology(self):
        app = random_application(
            GeneratorConfig(num_tasks=16, topology="layered"), seed=2
        )
        app.validate()
        assert len(app) <= 16

    @pytest.mark.parametrize("topology", ["series_parallel", "fork_join"])
    def test_structured_topologies_exact_size(self, topology):
        for n in (4, 12, 60, 240):
            app = random_application(
                GeneratorConfig(num_tasks=n, topology=topology), seed=5
            )
            app.validate()
            assert len(app) == n
            # two-terminal shapes: one entry task, one exit task
            assert len(app.sources()) == 1
            assert len(app.sinks()) == 1

    @pytest.mark.parametrize("topology", ["series_parallel", "fork_join"])
    def test_structured_topologies_deterministic(self, topology):
        a = random_application(
            GeneratorConfig(num_tasks=24, topology=topology), seed=13
        )
        b = random_application(
            GeneratorConfig(num_tasks=24, topology=topology), seed=13
        )
        assert sorted(a.dependencies()) == sorted(b.dependencies())
        for task in a.tasks():
            assert b.task(task.index).sw_time_ms == task.sw_time_ms

    def test_structured_topologies_need_four_tasks(self):
        for topology in ("series_parallel", "fork_join"):
            with pytest.raises(ConfigurationError):
                GeneratorConfig(num_tasks=3, topology=topology).validate()

    def test_software_only_fraction_extremes(self):
        all_sw = random_application(
            GeneratorConfig(num_tasks=12, software_only_fraction=1.0), seed=3
        )
        assert all_sw.hardware_capable_tasks() == []
        all_hw = random_application(
            GeneratorConfig(num_tasks=12, software_only_fraction=0.0), seed=3
        )
        assert len(all_hw.hardware_capable_tasks()) == 12

    def test_times_and_volumes_in_bounds(self):
        config = GeneratorConfig(
            num_tasks=20, min_sw_ms=1.0, max_sw_ms=2.0,
            min_kbytes=5.0, max_kbytes=6.0,
        )
        app = random_application(config, seed=4)
        for task in app.tasks():
            assert 1.0 <= task.sw_time_ms <= 2.0
        for _, _, kbytes in app.dependencies():
            assert 5.0 <= kbytes <= 6.0

    def test_explorable(self):
        """Generated apps run through the full pipeline."""
        from repro.arch.architecture import epicure_architecture
        from repro.sa.explorer import DesignSpaceExplorer

        app = random_application(GeneratorConfig(num_tasks=18), seed=5)
        explorer = DesignSpaceExplorer(
            app, epicure_architecture(800),
            iterations=400, warmup_iterations=80, seed=5,
        )
        result = explorer.run()
        assert result.best_evaluation.feasible
