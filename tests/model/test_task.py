"""Tests for Implementation / Task and Pareto-set handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.model.task import Implementation, Task, is_dominant_set, pareto_filter


class TestImplementation:
    def test_valid(self):
        impl = Implementation(clbs=100, time_ms=2.0, name="v0")
        assert impl.clbs == 100

    def test_invalid_area(self):
        with pytest.raises(ModelError):
            Implementation(clbs=0, time_ms=1.0)

    def test_invalid_time(self):
        with pytest.raises(ModelError):
            Implementation(clbs=10, time_ms=-1.0)

    def test_dominates(self):
        small_fast = Implementation(10, 1.0)
        big_slow = Implementation(20, 2.0)
        assert small_fast.dominates(big_slow)
        assert not big_slow.dominates(small_fast)

    def test_no_self_dominance(self):
        impl = Implementation(10, 1.0)
        assert not impl.dominates(Implementation(10, 1.0))

    def test_incomparable(self):
        small_slow = Implementation(10, 2.0)
        big_fast = Implementation(20, 1.0)
        assert not small_slow.dominates(big_fast)
        assert not big_fast.dominates(small_slow)


class TestParetoFilter:
    def test_keeps_frontier(self):
        impls = [
            Implementation(10, 5.0),
            Implementation(20, 3.0),
            Implementation(15, 6.0),  # dominated by (10, 5)
            Implementation(40, 1.0),
        ]
        kept = pareto_filter(impls)
        assert [(i.clbs, i.time_ms) for i in kept] == [
            (10, 5.0), (20, 3.0), (40, 1.0),
        ]
        assert is_dominant_set(kept)

    def test_single(self):
        kept = pareto_filter([Implementation(5, 1.0)])
        assert len(kept) == 1

    def test_same_area_keeps_fastest(self):
        kept = pareto_filter([Implementation(10, 5.0), Implementation(10, 2.0)])
        assert [(i.clbs, i.time_ms) for i in kept] == [(10, 2.0)]


class TestTask:
    def test_valid_software_only(self):
        task = Task(0, "ctl", "CONTROL", 2.0)
        assert not task.hardware_capable
        with pytest.raises(ModelError):
            task.smallest_implementation()
        with pytest.raises(ModelError):
            task.fastest_implementation()

    def test_implementations_sorted(self):
        task = Task(
            1, "fir", "FIR", 10.0,
            (Implementation(200, 0.5), Implementation(100, 1.0)),
        )
        assert [i.clbs for i in task.implementations] == [100, 200]
        assert task.smallest_implementation().clbs == 100
        assert task.fastest_implementation().time_ms == 0.5

    def test_non_dominant_set_rejected(self):
        with pytest.raises(ModelError):
            Task(
                1, "bad", "FIR", 10.0,
                (Implementation(100, 1.0), Implementation(200, 2.0)),
            )

    def test_negative_sw_time_rejected(self):
        with pytest.raises(ModelError):
            Task(0, "x", "F", -1.0)

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            Task(-1, "x", "F", 1.0)

    def test_implementation_lookup(self):
        task = Task(
            2, "f", "FIR", 10.0,
            (Implementation(100, 1.0), Implementation(200, 0.5)),
        )
        assert task.implementation(1).clbs == 200
        with pytest.raises(ModelError):
            task.implementation(5)

    def test_best_speedup(self):
        task = Task(
            3, "f", "FIR", 10.0, (Implementation(100, 2.0),)
        )
        assert task.best_speedup() == pytest.approx(5.0)


@given(
    points=st.lists(
        st.tuples(st.integers(1, 500), st.floats(0.01, 50.0, allow_nan=False)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=80, deadline=None)
def test_property_pareto_filter_is_dominant_and_minimal(points):
    impls = [Implementation(c, t) for c, t in points]
    kept = pareto_filter(impls)
    # dominant set
    assert is_dominant_set(kept)
    # every dropped point is dominated by some kept point
    for impl in impls:
        if impl not in kept:
            assert any(k.dominates(impl) for k in kept)
