"""Tests for the motion-detection benchmark — including the paper's
published aggregates, which double as a validation of the reverse-
engineered topology."""

import pytest

from repro.analysis.combinatorics import (
    chain_interleavings,
    count_linear_extensions,
)
from repro.model.motion import (
    MOTION_DEADLINE_MS,
    MOTION_RECONFIG_MS_PER_CLB,
    MOTION_TOTAL_SW_TIME_MS,
    SOFTWARE_ONLY_FUNCTIONS,
    motion_chain_ids,
    motion_detection_application,
)


@pytest.fixture(scope="module")
def app():
    return motion_detection_application()


class TestPaperAggregates:
    def test_28_tasks(self, app):
        assert len(app) == 28

    def test_total_software_time_is_76_4_ms(self, app):
        assert app.total_sw_time_ms() == pytest.approx(MOTION_TOTAL_SW_TIME_MS)
        assert MOTION_TOTAL_SW_TIME_MS == pytest.approx(76.4)

    def test_constants_match_paper(self):
        assert MOTION_DEADLINE_MS == 40.0
        assert MOTION_RECONFIG_MS_PER_CLB == pytest.approx(0.0225)

    def test_software_violates_deadline(self, app):
        assert app.total_sw_time_ms() > MOTION_DEADLINE_MS

    def test_five_or_six_implementations_per_hw_function(self, app):
        for task in app.hardware_capable_tasks():
            assert task.num_implementations in (5, 6), task.name


class TestTopology:
    def test_chain_structure(self, app):
        ids = motion_chain_ids()
        assert [len(ids[c]) for c in "ABCDEF"] == [7, 7, 6, 2, 1, 5]
        # intra-chain edges
        for label, members in ids.items():
            for a, b in zip(members, members[1:]):
                assert app.precedes(a, b)

    def test_joins(self, app):
        ids = motion_chain_ids()
        assert ids["B"][0] in app.successors(ids["A"][-1])
        assert ids["C"][0] in app.successors(ids["A"][-1])
        assert ids["D"][0] in app.successors(ids["C"][-1])
        assert ids["E"][0] in app.successors(ids["C"][-1])
        assert ids["F"][0] in app.successors(ids["D"][-1])
        assert ids["F"][0] in app.successors(ids["E"][-1])

    def test_b_chain_is_fully_parallel_to_the_14_chain(self, app):
        """Section 5 counts B as parallel with the entire C/D/E/F block."""
        ids = motion_chain_ids()
        rest = ids["C"] + ids["D"] + ids["E"] + ids["F"]
        for b in ids["B"]:
            for r in rest:
                assert not app.precedes(b, r)
                assert not app.precedes(r, b)

    def test_acyclic_and_single_source(self, app):
        app.validate()
        assert app.sources() == [0]


class TestLinearExtensionCounts:
    """The paper's own solution-space numbers — exact checks."""

    def test_first_20_nodes_give_1716_orders(self):
        assert chain_interleavings([7, 6]) == 1716

    def test_de_fork_gives_3_orders(self):
        assert chain_interleavings([2, 1]) == 3

    def test_full_graph_gives_348840_orders(self, app):
        assert count_linear_extensions(app.dag) == 348_840

    def test_348840_is_3_times_c21_7(self):
        from math import comb
        assert 3 * comb(21, 7) == 348_840


class TestDataVolumes:
    def test_every_edge_carries_data(self, app):
        for src, dst, kbytes in app.dependencies():
            assert kbytes > 0.0, (src, dst)

    def test_software_only_tasks(self, app):
        for task in app.tasks():
            if task.functionality in SOFTWARE_ONLY_FUNCTIONS:
                assert not task.hardware_capable, task.name
            else:
                assert task.hardware_capable, task.name

    def test_deterministic_construction(self, app):
        again = motion_detection_application()
        assert sorted(again.dependencies()) == sorted(app.dependencies())
        for task in app.tasks():
            other = again.task(task.index)
            assert other.name == task.name
            assert other.sw_time_ms == task.sw_time_ms
            assert other.implementations == task.implementations
