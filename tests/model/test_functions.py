"""Tests for the functionality library and implementation synthesis."""

import pytest

from repro.errors import ModelError
from repro.model.functions import (
    FUNCTION_LIBRARY,
    FunctionalitySpec,
    synthesize_implementations,
)
from repro.model.task import is_dominant_set


class TestFunctionalitySpec:
    def test_validation(self):
        with pytest.raises(ModelError):
            FunctionalitySpec("X", base_clbs=0, min_speedup=1, max_speedup=2)
        with pytest.raises(ModelError):
            FunctionalitySpec("X", base_clbs=10, min_speedup=0, max_speedup=2)
        with pytest.raises(ModelError):
            FunctionalitySpec("X", base_clbs=10, min_speedup=3, max_speedup=2)
        with pytest.raises(ModelError):
            FunctionalitySpec("X", base_clbs=10, min_speedup=1, max_speedup=2,
                              variants=0)
        with pytest.raises(ModelError):
            FunctionalitySpec("X", base_clbs=10, min_speedup=1, max_speedup=2,
                              area_growth=1.0)


class TestSynthesis:
    def test_variant_count_and_dominance(self):
        spec = FunctionalitySpec("FIRX", 50, 5.0, 25.0, variants=6)
        impls = synthesize_implementations(spec, sw_time_ms=10.0)
        assert len(impls) == 6
        assert is_dominant_set(impls)
        areas = [i.clbs for i in impls]
        times = [i.time_ms for i in impls]
        assert areas == sorted(areas)
        assert times == sorted(times, reverse=True)

    def test_speedup_range(self):
        spec = FunctionalitySpec("Y", 40, 4.0, 16.0, variants=5)
        impls = synthesize_implementations(spec, sw_time_ms=8.0)
        assert impls[0].time_ms == pytest.approx(8.0 / 4.0)
        assert impls[-1].time_ms == pytest.approx(8.0 / 16.0)

    def test_single_variant_uses_max_speedup(self):
        spec = FunctionalitySpec("Z", 30, 2.0, 6.0, variants=1)
        impls = synthesize_implementations(spec, sw_time_ms=6.0)
        assert len(impls) == 1
        assert impls[0].time_ms == pytest.approx(1.0)

    def test_negative_sw_time_rejected(self):
        spec = FunctionalitySpec("W", 30, 2.0, 6.0)
        with pytest.raises(ModelError):
            synthesize_implementations(spec, sw_time_ms=-1.0)


class TestLibrary:
    def test_every_entry_synthesizes_dominant_sets(self):
        for name, spec in FUNCTION_LIBRARY.items():
            impls = synthesize_implementations(spec, sw_time_ms=5.0)
            assert is_dominant_set(impls), name
            # the paper reports 5 or 6 synthesized variants per function
            assert spec.variants in (5, 6), name

    def test_control_functions_barely_speed_up(self):
        spec = FUNCTION_LIBRARY["CONTROL"]
        assert spec.min_speedup < 1.0  # hardware can even be slower
