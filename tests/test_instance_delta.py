"""Instance structure identity and delta classification.

``structure_digest`` keys the warm-start near-index: it must be blind
to every numeric field (a perturbed instance can reuse a donor's
solution) and sensitive to every structural one (a different search
space cannot).  ``diff_instances`` classifies how far apart two
same-structure instances actually are.
"""

import copy

import pytest

from repro.io import (
    ProblemInstance,
    diff_instances,
    instance_to_dict,
    structure_digest,
)


@pytest.fixture
def instance_doc(small_app, small_arch):
    return instance_to_dict(
        ProblemInstance(small_app, small_arch, deadline_ms=40.0)
    )


class TestStructureDigest:
    def test_accepts_instances_and_documents(
        self, small_app, small_arch, instance_doc
    ):
        instance = ProblemInstance(small_app, small_arch, deadline_ms=40.0)
        assert structure_digest(instance) == structure_digest(instance_doc)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["application"]["tasks"][0].update(sw_time_ms=99.0),
            lambda d: d["application"]["tasks"][1]["implementations"][0]
            .update(time_ms=0.123, clbs=7),
            lambda d: d["application"]["dependencies"][0]
            .update(data_kbytes=1e6),
            lambda d: d["architecture"]["bus"]
            .update(rate_kbytes_per_ms=1.0),
            lambda d: d.update(deadline_ms=None),
            lambda d: d.update(name="renamed", metadata={"extra": 1}),
        ],
        ids=["sw_time", "impl_params", "data_kbytes", "bus_rate",
             "deadline", "labels"],
    )
    def test_ignores_numeric_and_label_drift(self, instance_doc, mutate):
        perturbed = copy.deepcopy(instance_doc)
        mutate(perturbed)
        assert structure_digest(perturbed) == structure_digest(instance_doc)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d["application"]["tasks"].pop(),
            lambda d: d["application"]["dependencies"].pop(),
            lambda d: d["application"]["tasks"][1]["implementations"].pop(),
            lambda d: d["architecture"]["resources"][0]
            .update(name="other_cpu"),
            lambda d: d["architecture"]["resources"][0]
            .update(kind="asic"),
        ],
        ids=["task", "dependency", "impl_count", "resource_name",
             "resource_kind"],
    )
    def test_changes_on_structural_drift(self, instance_doc, mutate):
        perturbed = copy.deepcopy(instance_doc)
        mutate(perturbed)
        assert structure_digest(perturbed) != structure_digest(instance_doc)


class TestDiffInstances:
    def test_identical(self, instance_doc):
        delta = diff_instances(instance_doc, copy.deepcopy(instance_doc))
        assert delta.kind == "identical"
        assert delta.size == 0
        assert delta.changed == []

    def test_param_only_delta(self, instance_doc):
        perturbed = copy.deepcopy(instance_doc)
        perturbed["application"]["tasks"][0]["sw_time_ms"] = 99.0
        perturbed["deadline_ms"] = 50.0
        delta = diff_instances(instance_doc, perturbed)
        assert delta.kind == "param"
        assert delta.size == 2
        assert delta.param_changes == 2
        assert delta.structural_changes == 0
        assert any("sw_time_ms" in c for c in delta.changed)
        assert any("deadline_ms" in c for c in delta.changed)

    def test_structural_delta_dominates(self, instance_doc):
        perturbed = copy.deepcopy(instance_doc)
        perturbed["application"]["tasks"][0]["sw_time_ms"] = 99.0
        del perturbed["application"]["dependencies"][0]
        delta = diff_instances(instance_doc, perturbed)
        assert delta.kind == "structural"
        assert delta.param_changes == 1
        assert delta.structural_changes == 1
        assert delta.size == 2

    def test_resource_kind_change_is_structural(self, instance_doc):
        perturbed = copy.deepcopy(instance_doc)
        for resource in perturbed["architecture"]["resources"]:
            if resource["kind"] == "reconfigurable":
                resource["kind"] = "asic"
        delta = diff_instances(instance_doc, perturbed)
        assert delta.kind == "structural"

    def test_resource_param_change_is_param(self, instance_doc):
        perturbed = copy.deepcopy(instance_doc)
        for resource in perturbed["architecture"]["resources"]:
            if resource["kind"] == "reconfigurable":
                resource["n_clbs"] = 123
        delta = diff_instances(instance_doc, perturbed)
        assert delta.kind == "param"
        assert delta.size == 1

    def test_to_dict_round_trip_fields(self, instance_doc):
        perturbed = copy.deepcopy(instance_doc)
        perturbed["application"]["tasks"][0]["sw_time_ms"] = 99.0
        document = diff_instances(instance_doc, perturbed).to_dict()
        assert document["kind"] == "param"
        assert document["size"] == 1
        assert document["param_changes"] == 1
        assert document["structural_changes"] == 0
        assert len(document["changed"]) == 1

    def test_same_digest_implies_non_structural(self, instance_doc):
        # the invariant the near-index relies on, spot-checked: numeric
        # perturbations keep the digest AND classify as param-only
        perturbed = copy.deepcopy(instance_doc)
        perturbed["application"]["tasks"][2]["implementations"][1][
            "time_ms"
        ] = 3.21
        assert structure_digest(perturbed) == structure_digest(instance_doc)
        assert diff_instances(instance_doc, perturbed).kind == "param"
