"""Runner tests: parallel/sequential equivalence and checkpoint resume.

These are the load-bearing guarantees of the parallel runner: for fixed
seeds, adding worker processes changes wall-clock only — never a single
bit of any result — and an interrupted batch picks up where it left off.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.io import dump_solution
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    best_evaluation_of,
    derive_seeds,
    run_search_jobs,
)


def small_jobs(app, arch):
    """A mixed batch over the small fixture instance."""
    instance = InstanceSpec(app, architecture=arch)
    sa = StrategySpec("sa", {"iterations": 80, "warmup_iterations": 20})
    hill = StrategySpec("hill_climber", {"iterations": 60})
    random_spec = StrategySpec("random", {"samples": 25})
    return [
        SearchJob(sa, instance, seed=1, tag=["sa", 0]),
        SearchJob(sa, instance, seed=2, tag=["sa", 1]),
        SearchJob(hill, instance, seed=3, tag=["hill", 0]),
        SearchJob(random_spec, instance, seed=4, tag=["random", 0]),
    ]


def fingerprint(outcomes):
    return [
        (
            o.index,
            o.tag,
            o.seed,
            o.result.best_cost,
            o.result.history,
            dump_solution(o.result.best_solution),
        )
        for o in outcomes
    ]


class TestParallelEquivalence:
    def test_parallel_results_bit_identical(self, small_app, small_arch):
        jobs = small_jobs(small_app, small_arch)
        sequential = run_search_jobs(jobs, jobs=1)
        parallel = run_search_jobs(jobs, jobs=2)
        assert fingerprint(sequential) == fingerprint(parallel)

    def test_outcomes_in_submission_order(self, small_app, small_arch):
        outcomes = run_search_jobs(small_jobs(small_app, small_arch), jobs=2)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.tag for o in outcomes] == [
            ["sa", 0], ["sa", 1], ["hill", 0], ["random", 0],
        ]

    def test_inline_jobs_isolated_from_caller(self, small_app, small_arch):
        """The caller's objects are never mutated, even inline."""
        before = dump_solution(
            run_search_jobs(
                small_jobs(small_app, small_arch), jobs=1
            )[0].result.best_solution
        )
        again = dump_solution(
            run_search_jobs(
                small_jobs(small_app, small_arch), jobs=1
            )[0].result.best_solution
        )
        assert before == again

    def test_rejects_bad_job_count(self, small_app, small_arch):
        with pytest.raises(ConfigurationError):
            run_search_jobs(small_jobs(small_app, small_arch), jobs=0)

    def test_unknown_kind_rejected(self, small_app, small_arch):
        bad = SearchJob(
            StrategySpec("gradient_descent"),
            InstanceSpec(small_app, architecture=small_arch),
        )
        with pytest.raises(ConfigurationError):
            run_search_jobs([bad])

    def test_misspelled_option_rejected(self, small_app, small_arch):
        """A typo must fail loudly, not run a different experiment."""
        bad = SearchJob(
            StrategySpec("sa", {"warmup": 100, "iterations": 50}),
            InstanceSpec(small_app, architecture=small_arch),
        )
        with pytest.raises(ConfigurationError, match="warmup"):
            run_search_jobs([bad])


class TestSeeds:
    def test_derive_seeds_deterministic(self):
        assert derive_seeds(42, 5) == derive_seeds(42, 5)
        assert derive_seeds(42, 5) != derive_seeds(43, 5)
        assert len(set(derive_seeds(0, 100))) == 100

    def test_unseeded_jobs_get_position_stable_seeds(
        self, small_app, small_arch
    ):
        instance = InstanceSpec(small_app, architecture=small_arch)
        spec = StrategySpec("random", {"samples": 10})
        jobs = [SearchJob(spec, instance) for _ in range(3)]
        a = run_search_jobs(jobs, jobs=1)
        b = run_search_jobs(jobs, jobs=2)
        assert all(o.seed is not None for o in a)
        assert [o.seed for o in a] == [o.seed for o in b]
        assert fingerprint(a) == fingerprint(b)


class TestCheckpoint:
    def test_round_trip_restores_everything(
        self, small_app, small_arch, tmp_path
    ):
        path = str(tmp_path / "ck.jsonl")
        jobs = small_jobs(small_app, small_arch)
        fresh = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        assert not any(o.from_checkpoint for o in fresh)
        resumed = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        assert all(o.from_checkpoint for o in resumed)
        assert fingerprint(fresh) == fingerprint(resumed)

    def test_partial_checkpoint_completes_rest(
        self, small_app, small_arch, tmp_path
    ):
        path = str(tmp_path / "ck.jsonl")
        jobs = small_jobs(small_app, small_arch)
        fresh = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + "\n")
        resumed = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        assert [o.from_checkpoint for o in resumed] == [
            True, True, False, False,
        ]
        assert fingerprint(fresh) == fingerprint(resumed)
        # the re-run jobs were appended, so a third pass is all-cached
        third = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        assert all(o.from_checkpoint for o in third)

    def test_changed_options_invalidate_checkpoint(
        self, small_app, small_arch, tmp_path
    ):
        """Same kind+seed but different knobs must recompute — a resumed
        sweep with more iterations must not reuse short-run results."""
        path = str(tmp_path / "ck.jsonl")
        instance = InstanceSpec(small_app, architecture=small_arch)
        short = [SearchJob(
            StrategySpec("sa", {"iterations": 40, "warmup_iterations": 10}),
            instance, seed=1,
        )]
        long_run = [SearchJob(
            StrategySpec("sa", {"iterations": 80, "warmup_iterations": 10}),
            instance, seed=1,
        )]
        run_search_jobs(short, jobs=1, checkpoint_path=path)
        resumed = run_search_jobs(long_run, jobs=1, checkpoint_path=path)
        assert resumed[0].from_checkpoint is False
        assert resumed[0].result.iterations_run == 80

    def test_stale_rows_are_recomputed(self, small_app, small_arch, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        jobs = small_jobs(small_app, small_arch)
        run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        rows = [json.loads(line) for line in open(path)]
        rows[0]["seed"] = 999  # pretend the batch definition changed
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        resumed = run_search_jobs(jobs, jobs=1, checkpoint_path=path)
        assert resumed[0].from_checkpoint is False
        assert all(o.from_checkpoint for o in resumed[1:])


class TestBestEvaluationOf:
    def test_matches_best_cost(self, small_app, small_arch):
        outcome = run_search_jobs(
            small_jobs(small_app, small_arch), jobs=1
        )[0]
        evaluation = best_evaluation_of(outcome.result)
        assert evaluation.makespan_ms == pytest.approx(
            outcome.result.best_cost
        )
