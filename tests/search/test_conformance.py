"""Strategy-layer conformance: one harness, all five searchers.

Every strategy must return a :class:`SearchResult` whose invariants
hold regardless of how the search works internally:

* ``best_cost`` matches a fresh re-evaluation of ``best_solution``;
* ``history`` is the monotone best-so-far curve ending at ``best_cost``;
* budgets are respected;
* fixed seeds give identical results;
* the step callback sees every counted iteration.
"""

import pytest

from repro.baselines.ga import GeneticConfig, GeneticPartitioner
from repro.baselines.hill_climber import HillClimber
from repro.baselines.random_search import RandomSearch
from repro.baselines.tabu import TabuConfig, TabuSearch
from repro.mapping.evaluator import Evaluator
from repro.sa.annealer import AnnealerConfig, SimulatedAnnealing
from repro.sa.moves import MoveGenerator
from repro.search.strategy import SearchBudget, SearchResult

ITERATIONS = 120


def make_sa(app, arch, seed):
    return SimulatedAnnealing(
        Evaluator(app, arch),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        config=AnnealerConfig(
            iterations=ITERATIONS, warmup_iterations=30, seed=seed
        ),
    )


def make_hill(app, arch, seed):
    return HillClimber(
        Evaluator(app, arch),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        iterations=ITERATIONS,
        seed=seed,
    )


def make_tabu(app, arch, seed):
    return TabuSearch(
        Evaluator(app, arch),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        TabuConfig(iterations=40, candidates_per_iteration=3, seed=seed),
    )


def make_ga(app, arch, seed):
    return GeneticPartitioner(
        app, arch, GeneticConfig(population_size=10, generations=5, seed=seed)
    )


def make_random(app, arch, seed):
    return RandomSearch(app, arch, samples=40, seed=seed)


FACTORIES = {
    "sa": make_sa,
    "hill_climber": make_hill,
    "tabu": make_tabu,
    "ga": make_ga,
    "random": make_random,
}

strategies = pytest.mark.parametrize("kind", sorted(FACTORIES))


@strategies
class TestConformance:
    def test_result_invariants(self, kind, small_app, small_arch):
        strategy = FACTORIES[kind](small_app, small_arch, seed=5)
        result = strategy.search()
        assert isinstance(result, SearchResult)
        assert result.strategy == kind
        assert result.seed == 5
        assert result.iterations_run >= 1
        assert result.runtime_s >= 0.0
        assert result.evaluations >= 1
        assert result.best_solution is not None
        result.best_solution.validate()

    def test_best_cost_matches_reevaluation(self, kind, small_app, small_arch):
        strategy = FACTORIES[kind](small_app, small_arch, seed=6)
        result = strategy.search()
        fresh = Evaluator(small_app, small_arch)
        assert fresh.makespan_ms(result.best_solution) == (
            pytest.approx(result.best_cost)
        )

    def test_history_monotone_best_so_far(self, kind, small_app, small_arch):
        result = FACTORIES[kind](small_app, small_arch, seed=7).search()
        assert result.history, "strategies keep history by default"
        for earlier, later in zip(result.history, result.history[1:]):
            assert later <= earlier
        assert result.history[-1] == result.best_cost

    def test_budget_respected(self, kind, small_app, small_arch):
        budget = SearchBudget(iterations=3)
        result = FACTORIES[kind](small_app, small_arch, seed=8).search(
            budget=budget
        )
        assert result.iterations_run <= 3

    def test_stall_budget_stops_early(self, kind, small_app, small_arch):
        strategy = FACTORIES[kind](small_app, small_arch, seed=9)
        full = strategy.search()
        stalled = FACTORIES[kind](small_app, small_arch, seed=9).search(
            budget=SearchBudget(stall_limit=2)
        )
        assert stalled.iterations_run <= full.iterations_run

    def test_seed_determinism(self, kind, small_app, small_arch):
        a = FACTORIES[kind](small_app, small_arch, seed=11).search()
        b = FACTORIES[kind](small_app, small_arch, seed=11).search()
        assert a.best_cost == b.best_cost
        assert a.history == b.history
        assert a.iterations_run == b.iterations_run

    def test_step_callback_sees_each_iteration(
        self, kind, small_app, small_arch
    ):
        steps = []
        result = FACTORIES[kind](small_app, small_arch, seed=12).search(
            on_step=steps.append
        )
        assert len(steps) == result.iterations_run
        assert steps[-1].iteration == result.iterations_run
        assert steps[-1].best_cost == result.best_cost
        for earlier, later in zip(steps, steps[1:]):
            assert later.best_cost <= earlier.best_cost
