"""Strategy-layer conformance: one harness, every searcher.

Every strategy must return a :class:`SearchResult` whose invariants
hold regardless of how the search works internally:

* ``best_cost`` matches a fresh re-evaluation of ``best_solution``;
* ``history`` is the monotone best-so-far curve ending at ``best_cost``;
* budgets are respected;
* fixed seeds give identical results;
* the step callback sees every counted iteration.

Every invariant is checked under all three evaluation engines (engine
parity means the engine knob must never change a strategy's behavior,
only its speed).
"""

import pytest

from repro.baselines.ga import GeneticConfig, GeneticPartitioner
from repro.baselines.hill_climber import HillClimber
from repro.baselines.random_search import RandomSearch
from repro.baselines.tabu import TabuConfig, TabuSearch
from repro.mapping.evaluator import ENGINES, Evaluator
from repro.sa.annealer import AnnealerConfig, SimulatedAnnealing
from repro.sa.moves import MoveGenerator
from repro.search.strategy import SearchBudget, SearchResult

ITERATIONS = 120


def make_sa(app, arch, seed, engine):
    return SimulatedAnnealing(
        Evaluator(app, arch, engine=engine),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        config=AnnealerConfig(
            iterations=ITERATIONS, warmup_iterations=30, seed=seed
        ),
    )


def make_hill(app, arch, seed, engine):
    return HillClimber(
        Evaluator(app, arch, engine=engine),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        iterations=ITERATIONS,
        seed=seed,
    )


def make_tabu(app, arch, seed, engine):
    return TabuSearch(
        Evaluator(app, arch, engine=engine),
        MoveGenerator(app, p_impl=0.15, p_offload=0.1),
        TabuConfig(iterations=40, candidates_per_iteration=3, seed=seed),
    )


def make_ga(app, arch, seed, engine):
    return GeneticPartitioner(
        app, arch,
        GeneticConfig(population_size=10, generations=5, seed=seed),
        engine=engine,
    )


def make_random(app, arch, seed, engine):
    return RandomSearch(app, arch, samples=40, seed=seed, engine=engine)


def make_tempering(app, arch, seed, engine):
    from repro.sa.population import PopulationAnnealer

    return PopulationAnnealer(
        app, arch, chains=3, iterations=ITERATIONS // 3,
        warmup_iterations=10, seed=seed, swap_interval=5, engine=engine,
    )


FACTORIES = {
    "sa": make_sa,
    "hill_climber": make_hill,
    "tabu": make_tabu,
    "ga": make_ga,
    "random": make_random,
    "tempering": make_tempering,
}

strategies = pytest.mark.parametrize("kind", sorted(FACTORIES))
engines = pytest.mark.parametrize("engine", ENGINES)


@strategies
@engines
class TestConformance:
    def test_result_invariants(self, kind, engine, small_app, small_arch):
        strategy = FACTORIES[kind](small_app, small_arch, 5, engine)
        result = strategy.search()
        assert isinstance(result, SearchResult)
        assert result.strategy == kind
        assert result.seed == 5
        assert result.iterations_run >= 1
        assert result.runtime_s >= 0.0
        assert result.evaluations >= 1
        assert result.best_solution is not None
        result.best_solution.validate()

    def test_best_cost_matches_reevaluation(
        self, kind, engine, small_app, small_arch
    ):
        strategy = FACTORIES[kind](small_app, small_arch, 6, engine)
        result = strategy.search()
        fresh = Evaluator(small_app, small_arch)
        assert fresh.makespan_ms(result.best_solution) == (
            pytest.approx(result.best_cost)
        )

    def test_history_monotone_best_so_far(
        self, kind, engine, small_app, small_arch
    ):
        result = FACTORIES[kind](small_app, small_arch, 7, engine).search()
        assert result.history, "strategies keep history by default"
        for earlier, later in zip(result.history, result.history[1:]):
            assert later <= earlier
        assert result.history[-1] == result.best_cost

    def test_budget_respected(self, kind, engine, small_app, small_arch):
        budget = SearchBudget(iterations=3)
        result = FACTORIES[kind](small_app, small_arch, 8, engine).search(
            budget=budget
        )
        assert result.iterations_run <= 3

    def test_stall_budget_stops_early(
        self, kind, engine, small_app, small_arch
    ):
        strategy = FACTORIES[kind](small_app, small_arch, 9, engine)
        full = strategy.search()
        stalled = FACTORIES[kind](small_app, small_arch, 9, engine).search(
            budget=SearchBudget(stall_limit=2)
        )
        assert stalled.iterations_run <= full.iterations_run

    def test_seed_determinism(self, kind, engine, small_app, small_arch):
        a = FACTORIES[kind](small_app, small_arch, 11, engine).search()
        b = FACTORIES[kind](small_app, small_arch, 11, engine).search()
        assert a.best_cost == b.best_cost
        assert a.history == b.history
        assert a.iterations_run == b.iterations_run

    def test_step_callback_sees_each_iteration(
        self, kind, engine, small_app, small_arch
    ):
        steps = []
        result = FACTORIES[kind](small_app, small_arch, 12, engine).search(
            on_step=steps.append
        )
        assert len(steps) == result.iterations_run
        assert steps[-1].iteration == result.iterations_run
        assert steps[-1].best_cost == result.best_cost
        for earlier, later in zip(steps, steps[1:]):
            assert later.best_cost <= earlier.best_cost


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_engine_knob_does_not_change_results(kind, small_app, small_arch):
    """The engine is a speed knob, never a behavior knob: all three
    engines produce the identical search trajectory for a fixed seed."""
    reference = None
    for engine in ENGINES:
        result = FACTORIES[kind](small_app, small_arch, 21, engine).search()
        key = (result.best_cost, tuple(result.history), result.iterations_run)
        if reference is None:
            reference = key
        else:
            assert key == reference, engine
