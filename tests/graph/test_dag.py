"""Unit tests for the core Dag structure."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graph.dag import Dag


@pytest.fixture
def diamond() -> Dag:
    dag = Dag()
    dag.add_edge(0, 1, 1.0)
    dag.add_edge(0, 2, 2.0)
    dag.add_edge(1, 3, 3.0)
    dag.add_edge(2, 3, 4.0)
    return dag


class TestConstruction:
    def test_empty(self):
        dag = Dag()
        assert len(dag) == 0
        assert dag.num_edges() == 0
        assert dag.topological_order() == []

    def test_add_node_merges_attrs(self):
        dag = Dag()
        dag.add_node("a", color="red")
        dag.add_node("a", size=3)
        assert dag.node_attrs("a") == {"color": "red", "size": 3}

    def test_add_edge_creates_endpoints(self):
        dag = Dag()
        dag.add_edge("x", "y", 5.0)
        assert "x" in dag and "y" in dag
        assert dag.edge_weight("x", "y") == 5.0

    def test_self_loop_rejected(self):
        dag = Dag()
        with pytest.raises(GraphError):
            dag.add_edge("a", "a")

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.add_edge(0, 1)

    def test_edge_attrs(self):
        dag = Dag()
        dag.add_edge(0, 1, 1.0, kind="comm")
        assert dag.edge_attrs(0, 1) == {"kind": "comm"}
        with pytest.raises(GraphError):
            dag.edge_attrs(1, 0)


class TestMutation:
    def test_remove_edge(self, diamond):
        diamond.remove_edge(0, 1)
        assert not diamond.has_edge(0, 1)
        assert diamond.has_edge(0, 2)
        with pytest.raises(GraphError):
            diamond.remove_edge(0, 1)

    def test_remove_node_strips_edges(self, diamond):
        diamond.remove_node(1)
        assert 1 not in diamond
        assert not diamond.has_edge(0, 1)
        assert not diamond.has_edge(1, 3)
        assert diamond.has_edge(2, 3)

    def test_remove_missing_node(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_node(99)

    def test_set_edge_weight(self, diamond):
        diamond.set_edge_weight(0, 1, 9.0)
        assert diamond.edge_weight(0, 1) == 9.0
        with pytest.raises(GraphError):
            diamond.set_edge_weight(3, 0, 1.0)


class TestQueries:
    def test_degrees_and_neighbors(self, diamond):
        assert set(diamond.successors(0)) == {1, 2}
        assert set(diamond.predecessors(3)) == {1, 2}
        assert diamond.out_degree(0) == 2
        assert diamond.in_degree(3) == 2

    def test_missing_node_queries(self, diamond):
        with pytest.raises(GraphError):
            diamond.successors(42)
        with pytest.raises(GraphError):
            diamond.predecessors(42)

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == [0]
        assert diamond.sinks() == [3]

    def test_has_path(self, diamond):
        assert diamond.has_path(0, 3)
        assert not diamond.has_path(3, 0)
        assert not diamond.has_path(0, 99)

    def test_ancestors_descendants(self, diamond):
        assert diamond.descendants(0) == {1, 2, 3}
        assert diamond.ancestors(3) == {0, 1, 2}
        assert diamond.descendants(3) == set()


class TestTopology:
    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for src, dst, _ in diamond.edges():
            assert pos[src] < pos[dst]

    def test_topological_order_is_fifo_deterministic(self):
        """Kahn's ready set drains FIFO: the order is the breadth-first
        layering in node insertion order, stable across runs/versions."""
        dag = Dag()
        for n in (10, 20, 30, 40, 50):
            dag.add_node(n)
        dag.add_edge(10, 40)
        dag.add_edge(30, 40)
        dag.add_edge(20, 50)
        # Sources in insertion order (10, 20, 30), then newly freed
        # nodes in the order their last predecessor was processed.
        assert dag.topological_order() == [10, 20, 30, 50, 40]
        assert dag.topological_order() == dag.topological_order()

    def test_cycle_detection(self):
        dag = Dag()
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        dag.add_edge(2, 0)
        assert not dag.is_acyclic()
        with pytest.raises(CycleError):
            dag.check_acyclic()

    def test_acyclic(self, diamond):
        assert diamond.is_acyclic()


class TestConversion:
    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.remove_edge(0, 1)
        assert diamond.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_to_networkx(self, diamond):
        graph = diamond.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph[0][1]["weight"] == 1.0

    def test_from_edges(self):
        dag = Dag.from_edges([(0, 1), (1, 2)], nodes=[5])
        assert 5 in dag
        assert dag.has_edge(0, 1)
        assert dag.num_edges() == 2
