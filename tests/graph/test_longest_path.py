"""Tests for the topological longest-path DP."""

import pytest

from repro.errors import CycleError
from repro.graph.dag import Dag
from repro.graph.longest_path import (
    bottom_levels,
    critical_path,
    earliest_start_times,
    latest_start_times,
    longest_path_length,
)


def weighted(dag_weights):
    """node_weight callable from a dict."""
    return lambda n: dag_weights.get(n, 0.0)


class TestLongestPath:
    def test_empty_graph(self):
        assert longest_path_length(Dag()) == 0.0

    def test_single_node(self):
        dag = Dag()
        dag.add_node("a")
        assert longest_path_length(dag, weighted({"a": 4.0})) == 4.0

    def test_chain_edge_weights(self):
        dag = Dag()
        dag.add_edge(0, 1, 2.0)
        dag.add_edge(1, 2, 3.0)
        assert longest_path_length(dag) == 5.0

    def test_chain_node_weights(self):
        dag = Dag()
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        w = weighted({0: 1.0, 1: 2.0, 2: 4.0})
        assert longest_path_length(dag, w) == 7.0

    def test_diamond_takes_heavier_branch(self):
        dag = Dag()
        dag.add_edge("s", "a", 1.0)
        dag.add_edge("s", "b", 5.0)
        dag.add_edge("a", "t", 1.0)
        dag.add_edge("b", "t", 1.0)
        assert longest_path_length(dag) == 6.0

    def test_mixed_node_and_edge_weights(self):
        dag = Dag()
        dag.add_edge("s", "t", 2.0)
        w = weighted({"s": 3.0, "t": 4.0})
        # start(t) = 0 + 3 + 2 = 5; finish(t) = 9
        assert longest_path_length(dag, w) == 9.0

    def test_cycle_raises(self):
        dag = Dag()
        dag.add_edge(0, 1)
        dag.add_edge(1, 0)
        with pytest.raises(CycleError):
            longest_path_length(dag)


class TestStartTimes:
    def test_earliest_starts(self):
        dag = Dag()
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        dag.add_edge(2, 3)
        w = weighted({0: 1.0, 1: 5.0, 2: 2.0, 3: 1.0})
        start = earliest_start_times(dag, w)
        assert start[0] == 0.0
        assert start[1] == 1.0
        assert start[2] == 1.0
        assert start[3] == 6.0  # waits for the slow branch

    def test_latest_starts_respect_deadline(self):
        dag = Dag()
        dag.add_edge(0, 1)
        w = weighted({0: 2.0, 1: 3.0})
        makespan = longest_path_length(dag, w)
        late = latest_start_times(dag, makespan, w)
        early = earliest_start_times(dag, w)
        for node in (0, 1):
            assert late[node] >= early[node] - 1e-12
        # The chain is fully critical: slack must be zero.
        assert late[0] == pytest.approx(early[0])
        assert late[1] == pytest.approx(early[1])

    def test_slack_appears_off_critical_path(self):
        dag = Dag()
        dag.add_edge("s", "fast", 0.0)
        dag.add_edge("s", "slow", 0.0)
        dag.add_edge("fast", "t", 0.0)
        dag.add_edge("slow", "t", 0.0)
        w = weighted({"s": 1.0, "fast": 1.0, "slow": 6.0, "t": 1.0})
        makespan = longest_path_length(dag, w)
        late = latest_start_times(dag, makespan, w)
        early = earliest_start_times(dag, w)
        assert late["fast"] - early["fast"] == pytest.approx(5.0)
        assert late["slow"] - early["slow"] == pytest.approx(0.0)


class TestCriticalPath:
    def test_witness_path(self):
        dag = Dag()
        dag.add_edge("s", "a", 1.0)
        dag.add_edge("s", "b", 5.0)
        dag.add_edge("a", "t", 1.0)
        dag.add_edge("b", "t", 1.0)
        length, path = critical_path(dag)
        assert length == 6.0
        assert path == ["s", "b", "t"]

    def test_empty(self):
        assert critical_path(Dag()) == (0.0, [])

    def test_node_weight_witness(self):
        dag = Dag()
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        w = weighted({0: 1.0, 1: 10.0, 2: 2.0})
        length, path = critical_path(dag, w)
        assert length == 11.0
        assert path == [0, 1]


class TestBottomLevels:
    def test_chain(self):
        dag = Dag()
        dag.add_edge(0, 1, 1.0)
        dag.add_edge(1, 2, 1.0)
        w = weighted({0: 2.0, 1: 3.0, 2: 4.0})
        levels = bottom_levels(dag, w)
        assert levels[2] == 4.0
        assert levels[1] == 3.0 + 1.0 + 4.0
        assert levels[0] == 2.0 + 1.0 + levels[1]

    def test_priority_orders_critical_first(self):
        dag = Dag()
        dag.add_edge("s", "heavy")
        dag.add_edge("s", "light")
        w = weighted({"s": 1.0, "heavy": 9.0, "light": 1.0})
        levels = bottom_levels(dag, w)
        assert levels["heavy"] > levels["light"]
