"""Tests for the max-plus closure (incremental Woodbury-style updates)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CycleError, GraphError
from repro.graph.dag import Dag
from repro.graph.generators import random_dag
from repro.graph.longest_path import longest_path_length
from repro.graph.maxplus import NEG_INF, MaxPlusClosure


class TestBasics:
    def test_empty_distance(self):
        closure = MaxPlusClosure([0, 1])
        assert closure.distance(0, 1) == NEG_INF
        assert closure.distance(0, 0) == 0.0

    def test_single_edge(self):
        closure = MaxPlusClosure([0, 1])
        closure.add_edge(0, 1, 3.0)
        assert closure.distance(0, 1) == 3.0
        assert closure.longest_path_length() == 3.0

    def test_diamond_takes_max(self):
        closure = MaxPlusClosure(range(4))
        closure.add_edge(0, 1, 1.0)
        closure.add_edge(0, 2, 5.0)
        closure.add_edge(1, 3, 1.0)
        closure.add_edge(2, 3, 1.0)
        assert closure.distance(0, 3) == 6.0

    def test_cycle_rejected(self):
        closure = MaxPlusClosure([0, 1])
        closure.add_edge(0, 1, 1.0)
        with pytest.raises(CycleError):
            closure.add_edge(1, 0, 1.0)

    def test_duplicate_edge_rejected(self):
        closure = MaxPlusClosure([0, 1])
        closure.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            closure.add_edge(0, 1, 2.0)


class TestIncrementalUpdates:
    def test_insert_matches_recompute(self):
        rng = random.Random(5)
        closure = MaxPlusClosure(range(10))
        for _ in range(40):
            a, b = rng.randrange(10), rng.randrange(10)
            if a == b:
                continue
            try:
                closure.add_edge(a, b, rng.uniform(0.5, 3.0))
            except (CycleError, GraphError):
                continue
        closure.self_check()

    def test_weight_increase(self):
        closure = MaxPlusClosure([0, 1, 2])
        closure.add_edge(0, 1, 1.0)
        closure.add_edge(1, 2, 1.0)
        closure.increase_edge_weight(0, 1, 4.0)
        assert closure.distance(0, 2) == 5.0
        closure.self_check()

    def test_weight_decrease_goes_lazy(self):
        closure = MaxPlusClosure([0, 1])
        closure.add_edge(0, 1, 5.0)
        closure.set_edge_weight(0, 1, 1.0)
        assert closure.is_dirty
        assert closure.distance(0, 1) == 1.0  # recomputed on query
        assert not closure.is_dirty

    def test_removal_goes_lazy(self):
        closure = MaxPlusClosure(range(4))
        closure.add_edge(0, 1, 1.0)
        closure.add_edge(0, 2, 5.0)
        closure.add_edge(1, 3, 1.0)
        closure.add_edge(2, 3, 1.0)
        closure.remove_edge(0, 2)
        assert closure.is_dirty
        assert closure.distance(0, 3) == 2.0

    def test_increase_on_missing_edge(self):
        closure = MaxPlusClosure([0, 1])
        with pytest.raises(GraphError):
            closure.increase_edge_weight(0, 1, 2.0)

    def test_decrease_via_increase_api_rejected(self):
        closure = MaxPlusClosure([0, 1])
        closure.add_edge(0, 1, 5.0)
        with pytest.raises(GraphError):
            closure.increase_edge_weight(0, 1, 1.0)


class TestAgainstLongestPath:
    def test_matches_dp_on_random_dags(self):
        for seed in range(5):
            dag = random_dag(12, edge_probability=0.25, seed=seed)
            rng = random.Random(seed)
            for src, dst, _ in list(dag.edges()):
                dag.set_edge_weight(src, dst, rng.uniform(0.1, 4.0))
            closure = MaxPlusClosure.from_dag(dag)
            assert closure.longest_path_length() == pytest.approx(
                longest_path_length(dag)
            )

    def test_pairwise_against_brute_force(self):
        dag = Dag()
        dag.add_edge("a", "b", 2.0)
        dag.add_edge("b", "c", 3.0)
        dag.add_edge("a", "c", 4.0)
        closure = MaxPlusClosure.from_dag(dag)
        assert closure.distance("a", "c") == 5.0  # through b beats direct


@given(
    edges=st.lists(
        st.tuples(
            st.integers(0, 6),
            st.integers(0, 6),
            st.floats(0.0, 10.0, allow_nan=False),
        ),
        max_size=25,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_incremental_insertions_match_recompute(edges):
    closure = MaxPlusClosure(range(7))
    for a, b, w in edges:
        if a == b:
            continue
        try:
            closure.add_edge(a, b, w)
        except (CycleError, GraphError):
            continue
    closure.self_check()
