"""Unit and property tests for the incremental path-count closure."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CycleError, GraphError
from repro.graph.closure import PathCountClosure
from repro.graph.dag import Dag
from repro.graph.generators import random_dag


class TestBasics:
    def test_empty(self):
        closure = PathCountClosure()
        assert len(closure) == 0

    def test_single_edge(self):
        closure = PathCountClosure([0, 1])
        closure.add_edge(0, 1)
        assert closure.has_path(0, 1)
        assert not closure.has_path(1, 0)
        assert closure.path_count(0, 1) == 1

    def test_diamond_counts_two_paths(self):
        closure = PathCountClosure(range(4))
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            closure.add_edge(a, b)
        assert closure.path_count(0, 3) == 2
        assert closure.path_count(0, 1) == 1

    def test_duplicate_node_rejected(self):
        closure = PathCountClosure([0])
        with pytest.raises(GraphError):
            closure.add_node(0)

    def test_untracked_node_rejected(self):
        closure = PathCountClosure([0])
        with pytest.raises(GraphError):
            closure.add_edge(0, 7)

    def test_duplicate_edge_rejected(self):
        closure = PathCountClosure([0, 1])
        closure.add_edge(0, 1)
        with pytest.raises(GraphError):
            closure.add_edge(0, 1)

    def test_self_loop_rejected(self):
        closure = PathCountClosure([0])
        with pytest.raises(GraphError):
            closure.add_edge(0, 0)


class TestCycleDetection:
    def test_would_create_cycle(self):
        closure = PathCountClosure([0, 1, 2])
        closure.add_edge(0, 1)
        closure.add_edge(1, 2)
        assert closure.would_create_cycle(2, 0)
        assert closure.would_create_cycle(0, 0)
        assert not closure.would_create_cycle(0, 2)

    def test_add_cycle_edge_raises(self):
        closure = PathCountClosure([0, 1])
        closure.add_edge(0, 1)
        with pytest.raises(CycleError):
            closure.add_edge(1, 0)

    def test_cycle_after_removal_allowed(self):
        closure = PathCountClosure([0, 1])
        closure.add_edge(0, 1)
        closure.remove_edge(0, 1)
        closure.add_edge(1, 0)  # fine now
        assert closure.has_path(1, 0)


class TestRemoval:
    def test_remove_edge_restores_counts(self):
        closure = PathCountClosure(range(4))
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            closure.add_edge(a, b)
        closure.remove_edge(1, 3)
        assert closure.path_count(0, 3) == 1
        closure.self_check()

    def test_remove_missing_edge(self):
        closure = PathCountClosure([0, 1])
        with pytest.raises(GraphError):
            closure.remove_edge(0, 1)

    def test_remove_node_requires_no_edges(self):
        closure = PathCountClosure([0, 1])
        closure.add_edge(0, 1)
        with pytest.raises(GraphError):
            closure.remove_node(0)
        closure.remove_edge(0, 1)
        closure.remove_node(0)
        assert 0 not in closure

    def test_slot_reuse(self):
        closure = PathCountClosure([0, 1])
        closure.remove_node(0)
        closure.add_node(2)
        closure.add_edge(1, 2)
        assert closure.has_path(1, 2)
        closure.self_check()


class TestAgainstReference:
    def test_random_insert_delete_sequences(self):
        rng = random.Random(7)
        for trial in range(10):
            n = rng.randint(3, 10)
            closure = PathCountClosure(range(n))
            live = []
            for _ in range(60):
                if live and rng.random() < 0.35:
                    edge = live.pop(rng.randrange(len(live)))
                    closure.remove_edge(*edge)
                else:
                    a, b = rng.randrange(n), rng.randrange(n)
                    if a == b or closure.has_edge(a, b):
                        continue
                    try:
                        closure.add_edge(a, b)
                        live.append((a, b))
                    except CycleError:
                        pass
            closure.self_check()

    def test_from_dag_matches_reachability(self):
        dag = random_dag(12, edge_probability=0.3, seed=3)
        closure = PathCountClosure.from_dag(dag)
        for a in dag.nodes():
            for b in dag.nodes():
                if a != b:
                    assert closure.has_path(a, b) == dag.has_path(a, b)


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30
    )
)
@settings(max_examples=60, deadline=None)
def test_property_incremental_matches_recount(edges):
    """After any feasible insert sequence the incremental counts match a
    from-scratch recount (hypothesis-generated edge streams)."""
    closure = PathCountClosure(range(8))
    for a, b in edges:
        if a == b or closure.has_edge(a, b):
            continue
        try:
            closure.add_edge(a, b)
        except CycleError:
            continue
    closure.self_check()
