"""Tests for the DAG generators."""

import pytest

from repro.errors import ConfigurationError
from repro.graph import generators as gen


class TestChain:
    def test_shape(self):
        dag = gen.chain(5)
        assert len(dag) == 5
        assert dag.num_edges() == 4
        assert dag.sources() == [0]
        assert dag.sinks() == [4]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            gen.chain(0)


class TestForkJoin:
    def test_shape(self):
        dag = gen.fork_join(3)
        assert len(dag) == 5
        assert dag.out_degree(0) == 3
        assert dag.in_degree(4) == 3

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            gen.fork_join(0)


class TestLayered:
    def test_connectivity(self):
        dag = gen.layered(4, 3, edge_probability=0.0, seed=1)
        assert len(dag) == 12
        # every non-first-layer node has at least one predecessor
        for node in range(3, 12):
            assert dag.in_degree(node) >= 1
        assert dag.is_acyclic()

    def test_determinism(self):
        a = gen.layered(3, 4, 0.5, seed=9)
        b = gen.layered(3, 4, 0.5, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            gen.layered(2, 2, edge_probability=1.5)


class TestRandomDag:
    def test_acyclic_and_deterministic(self):
        a = gen.random_dag(15, 0.3, seed=2)
        b = gen.random_dag(15, 0.3, seed=2)
        assert a.is_acyclic()
        assert sorted(a.edges()) == sorted(b.edges())

    def test_dense_is_complete_order(self):
        dag = gen.random_dag(6, 1.0, seed=0)
        assert dag.num_edges() == 15  # C(6,2)


class TestSeriesParallel:
    def test_two_terminal(self):
        dag = gen.series_parallel(12, seed=4)
        assert len(dag) == 12
        assert dag.is_acyclic()
        assert dag.sources() == [0]
        assert dag.sinks() == [1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            gen.series_parallel(1)

    def test_every_node_on_a_source_sink_path(self):
        dag = gen.series_parallel(30, seed=7)
        for node in dag.nodes():
            if node != 0:
                assert dag.in_degree(node) >= 1
            if node != 1:
                assert dag.out_degree(node) >= 1

    def test_determinism(self):
        a = gen.series_parallel(25, seed=11)
        b = gen.series_parallel(25, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())


class TestForkJoinChain:
    def test_shape(self):
        dag = gen.fork_join_chain([3, 2])
        # 0 -> {1,2,3} -> 4 -> {5,6} -> 7
        assert len(dag) == 1 + 2 + 5
        assert dag.sources() == [0]
        assert dag.sinks() == [7]
        assert dag.out_degree(0) == 3
        assert dag.in_degree(4) == 3
        assert dag.out_degree(4) == 2
        assert dag.in_degree(7) == 2
        assert dag.is_acyclic()

    def test_single_block_matches_fork_join(self):
        chained = gen.fork_join_chain([4])
        simple = gen.fork_join(4)
        assert len(chained) == len(simple)
        assert chained.sources() == simple.sources()
        assert sorted(chained.edges()) == sorted(simple.edges())

    def test_widths_hit_requested_node_count(self):
        for n in range(4, 130):
            widths = gen.fork_join_chain_widths(n, seed=n)
            assert all(w >= 1 for w in widths)
            dag = gen.fork_join_chain(widths)
            assert len(dag) == n == 1 + len(widths) + sum(widths)
            assert len(dag.sources()) == 1
            assert len(dag.sinks()) == 1

    def test_widths_deterministic(self):
        assert gen.fork_join_chain_widths(60, seed=3) == \
            gen.fork_join_chain_widths(60, seed=3)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            gen.fork_join_chain([])
        with pytest.raises(ConfigurationError):
            gen.fork_join_chain([2, 0])
        with pytest.raises(ConfigurationError):
            gen.fork_join_chain_widths(3)


class TestTgffLike:
    def test_shape(self):
        dag = gen.tgff_like(20, seed=3)
        assert len(dag) == 20
        assert dag.is_acyclic()
        for node in dag.nodes():
            assert dag.in_degree(node) <= 2

    def test_out_degree_bound(self):
        dag = gen.tgff_like(30, max_out_degree=2, seed=6)
        for node in dag.nodes():
            assert dag.out_degree(node) <= 2


class TestParallelChains:
    def test_chains_with_ids(self):
        dag, chains = gen.parallel_chains_with_ids([3, 2, 1])
        assert len(dag) == 6
        assert chains == [[0, 1, 2], [3, 4], [5]]
        assert dag.num_edges() == 3
        assert dag.is_acyclic()

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            gen.parallel_chains([])
        with pytest.raises(ConfigurationError):
            gen.parallel_chains([2, 0])
