"""Reachability bitsets: parity with the path-count closure.

The move generator's precedence checks now answer through
:class:`repro.graph.reachability.ReachabilityIndex` (one big-int
shift-and-mask per query) instead of the closure's dict-and-list walk.
These tests pin the index against the closure's graph-walk answer over
the *full* scenario corpus, plus the cache-invalidation contract on
``Application`` and the compiled-instance view.
"""

import pytest

from repro.bench.corpus import CORPUS, get_scenario
from repro.errors import GraphError
from repro.graph.closure import PathCountClosure
from repro.graph.dag import Dag
from repro.graph.reachability import ReachabilityIndex
from repro.mapping.compiled import compile_instance
from repro.model.application import Application
from repro.model.task import Implementation, Task


def _diamond() -> Dag:
    dag = Dag()
    for n in range(1, 5):
        dag.add_node(n)
    dag.add_edge(1, 2)
    dag.add_edge(1, 3)
    dag.add_edge(2, 4)
    dag.add_edge(3, 4)
    return dag


class TestReachabilityIndex:
    def test_diamond_paths(self):
        index = ReachabilityIndex.from_dag(_diamond())
        assert index.has_path(1, 4)
        assert index.has_path(1, 2) and index.has_path(1, 3)
        assert index.has_path(2, 4) and index.has_path(3, 4)
        assert not index.has_path(2, 3) and not index.has_path(3, 2)
        assert not index.has_path(4, 1)
        assert not index.has_path(1, 1)  # strict: no self-reachability

    def test_ancestor_descendant_sets(self):
        index = ReachabilityIndex.from_dag(_diamond())
        assert index.descendants(1) == {2, 3, 4}
        assert index.ancestors(4) == {1, 2, 3}
        assert index.ancestors(1) == set()
        assert index.descendants(4) == set()

    def test_masks_are_consistent(self):
        index = ReachabilityIndex.from_dag(_diamond())
        for a in (1, 2, 3, 4):
            for b in (1, 2, 3, 4):
                forward = index.has_path(a, b)
                via_anc = bool(
                    (index.ancestors_mask(b) >> index.position(a)) & 1
                )
                assert forward == via_anc

    def test_unknown_node_raises(self):
        index = ReachabilityIndex.from_dag(_diamond())
        with pytest.raises(GraphError):
            index.has_path(1, 99)
        with pytest.raises(GraphError):
            index.descendants_mask(99)

    def test_from_successors_matches_from_dag(self):
        # Same diamond over dense ids 0..3.
        succs = [[1, 2], [3], [3], []]
        index = ReachabilityIndex.from_successors(succs)
        assert index.has_path(0, 3)
        assert not index.has_path(1, 2)
        assert index.descendants(0) == {1, 2, 3}
        assert index.ancestors(3) == {0, 1, 2}

    def test_from_successors_rejects_cycle(self):
        with pytest.raises(GraphError):
            ReachabilityIndex.from_successors([[1], [0]])


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_parity_with_closure(name):
    """Every (a, b) pair of every corpus scenario answers identically
    through the bitset index, the path-count closure, and the compiled
    instance's dense view."""
    instance = get_scenario(name).build()
    application = instance.application
    closure = PathCountClosure.from_dag(application.dag)
    index = application.reachability()
    compiled = compile_instance(application, instance.architecture.bus)
    tasks = application.task_indices()
    for a in tasks:
        for b in tasks:
            expected = closure.has_path(a, b)
            assert index.has_path(a, b) == expected
            assert application.precedes(a, b) == expected
            assert compiled.precedes(a, b) == expected


class TestApplicationCache:
    def _app(self):
        app = Application("cache-test")
        for i in (1, 2, 3):
            app.add_task(Task(index=i, name=f"t{i}", functionality=f"f{i}",
                              sw_time_ms=1.0))
        app.add_dependency(1, 2)
        return app

    def test_new_dependency_invalidates(self):
        app = self._app()
        assert app.precedes(1, 2)
        assert not app.precedes(1, 3)
        app.add_dependency(2, 3)
        assert app.precedes(1, 3)  # stale bitsets would say False

    def test_new_task_invalidates(self):
        app = self._app()
        assert not app.precedes(1, 3)
        task = app.add_task(Task(index=4, name="t4", functionality="f4",
                                 sw_time_ms=1.0))
        app.add_dependency(3, 4)
        assert app.precedes(3, 4)
        assert not app.precedes(1, 4)

    def test_fork_shares_compiled_index(self):
        instance = get_scenario("motion/800").build()
        compiled = compile_instance(
            instance.application, instance.architecture.bus
        )
        sibling = compiled.fork()
        assert compiled.reachability is sibling.reachability
