"""Batched frontier kernels: equivalence with the scalar DPs + lanes.

``batched_longest_path`` must produce bit-identical start/finish values
to the list-based scalar DP on every lane, flag cyclic lanes as
infeasible without deadlocking the batch, and keep lanes fully
independent of each other.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.graph.kernels import batched_longest_path, lane_makespans


def scalar_dp(n, edges, durations):
    """Reference: Kahn + ASAP DP over one lane's edge list."""
    indeg = [0] * n
    succ = [[] for _ in range(n)]
    pred = [[] for _ in range(n)]
    for src, dst, w in edges:
        indeg[dst] += 1
        succ[src].append(dst)
        pred[dst].append((src, w))
    order = [v for v in range(n) if indeg[v] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for nxt in succ[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                order.append(nxt)
    if len(order) != n:
        return None, None  # cyclic
    starts = [0.0] * n
    finish = [0.0] * n
    for v in order:
        best = 0.0
        for u, w in pred[v]:
            candidate = finish[u] + w
            if candidate > best:
                best = candidate
        if best < 0.0:
            best = 0.0
        starts[v] = best
        finish[v] = best + durations[v]
    return starts, finish


def random_lane(rng, n):
    """A random DAG lane: edges respect a random node permutation."""
    perm = list(range(n))
    rng.shuffle(perm)
    edges = []
    for _ in range(rng.randrange(1, 3 * n)):
        a, b = rng.sample(range(n), 2)
        if perm.index(a) > perm.index(b):
            a, b = b, a
        edges.append((a, b, rng.choice([0.0, rng.uniform(0.1, 5.0)])))
    durations = [rng.choice([0.0, rng.uniform(0.1, 4.0)]) for _ in range(n)]
    return edges, durations


def pack(lanes, n):
    """Lanes -> the kernel's flat global-id arrays."""
    e_src, e_dst, e_w, durations = [], [], [], []
    for k, (edges, durs) in enumerate(lanes):
        base = k * n
        for a, b, w in edges:
            e_src.append(base + a)
            e_dst.append(base + b)
            e_w.append(w)
        durations.extend(durs)
    return (
        np.asarray(e_src, dtype=np.int64),
        np.asarray(e_dst, dtype=np.int64),
        np.asarray(e_w),
        np.asarray(durations),
    )


def test_matches_scalar_dp_on_random_lanes():
    rng = random.Random(3)
    n = 14
    for _round in range(20):
        lanes = [random_lane(rng, n) for _ in range(5)]
        e_src, e_dst, e_w, durations = pack(lanes, n)
        starts, finish, feasible = batched_longest_path(
            len(lanes), n, e_src, e_dst, e_w, durations
        )
        assert feasible.all()
        for k, (edges, durs) in enumerate(lanes):
            want_starts, want_finish = scalar_dp(n, edges, durs)
            got_starts = starts[k * n : (k + 1) * n]
            got_finish = finish[k * n : (k + 1) * n]
            for v in range(n):
                assert got_starts[v] == want_starts[v], (_round, k, v)
                assert got_finish[v] == want_finish[v], (_round, k, v)


def test_cyclic_lane_flagged_not_deadlocked():
    n = 4
    acyclic = ([(0, 1, 1.0), (1, 2, 0.5)], [1.0, 1.0, 1.0, 1.0])
    cyclic = ([(0, 1, 1.0), (1, 2, 0.0), (2, 1, 0.0)], [1.0, 1.0, 1.0, 1.0])
    e_src, e_dst, e_w, durations = pack([acyclic, cyclic, acyclic], n)
    starts, finish, feasible = batched_longest_path(
        3, n, e_src, e_dst, e_w, durations
    )
    assert list(feasible) == [True, False, True]
    want_starts, want_finish = scalar_dp(n, *acyclic)
    for k in (0, 2):
        for v in range(n):
            assert finish[k * n + v] == want_finish[v]
    spans = lane_makespans(finish, feasible, 3, n)
    assert spans[0] == max(want_finish)
    assert np.isinf(spans[1])
    assert spans[2] == spans[0]


def test_empty_edge_batch():
    durations = np.asarray([1.0, 2.0, 0.5, 3.0])
    starts, finish, feasible = batched_longest_path(
        2, 2, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        np.empty(0), durations,
    )
    assert feasible.all()
    assert list(starts) == [0.0, 0.0, 0.0, 0.0]
    assert list(finish) == [1.0, 2.0, 0.5, 3.0]


def test_parallel_edges_supported():
    n = 3
    lane = ([(0, 1, 1.0), (0, 1, 2.0), (1, 2, 0.0)], [1.0, 1.0, 1.0])
    e_src, e_dst, e_w, durations = pack([lane], n)
    starts, finish, feasible = batched_longest_path(
        1, n, e_src, e_dst, e_w, durations
    )
    assert feasible.all()
    assert starts[1] == 3.0  # the heavier parallel edge wins
    assert finish[2] == 5.0
