"""Array-backed DP kernels are bit-identical to the Dag-based functions.

The kernels (``kahn_order_indices``, ``earliest_starts_indexed``,
``makespan_from_starts``) operate on dense ids and flat edge arrays;
this property test interns random layered DAGs and checks that they
reproduce ``Dag.topological_order`` / ``earliest_start_times`` /
``longest_path_length`` exactly — including the two-layer overlay,
serialization-chain predecessors, and the finish-folding variant.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import CycleError
from repro.graph.dag import Dag, NodeInterner
from repro.graph.generators import layered
from repro.graph.longest_path import (
    earliest_start_times,
    earliest_starts_indexed,
    kahn_order_indices,
    longest_path_length,
    makespan_from_starts,
)


def _interned(dag, rng):
    """Flatten a Dag into the kernel representation."""
    interner = NodeInterner(dag.nodes())
    n = len(interner)
    durations = [rng.uniform(0.0, 4.0) for _ in range(n)]
    e_src, e_w = [], []
    pred_edges = [[] for _ in range(n)]
    succ = [[] for _ in range(n)]
    indeg = [0] * n
    for a, b, w in dag.edges():
        ia, ib = interner.id_of(a), interner.id_of(b)
        ei = len(e_src)
        e_src.append(ia)
        e_w.append(w)
        pred_edges[ib].append(ei)
        succ[ia].append(ib)
        indeg[ib] += 1
    return interner, n, durations, e_src, e_w, pred_edges, succ, indeg


@pytest.mark.parametrize("seed", range(6))
def test_kernels_match_dag_functions(seed):
    rng = random.Random(seed)
    dag = layered(4 + seed % 3, 4, edge_probability=0.5, seed=seed)
    interner, n, dur, e_src, e_w, pred_edges, succ, indeg = _interned(dag, rng)

    order = kahn_order_indices(n, indeg, succ, interner.keys())
    assert sorted(order) == list(range(n))
    assert [interner.key_of(v) for v in order] == dag.topological_order()

    weight = {interner.key_of(i): dur[i] for i in range(n)}
    expected = earliest_start_times(dag, lambda node: weight[node])
    starts = earliest_starts_indexed(order, pred_edges, e_src, e_w, dur)
    for node, value in expected.items():
        assert starts[interner.id_of(node)] == value

    expected_len = longest_path_length(dag, lambda node: weight[node])
    assert makespan_from_starts(starts, dur, n) == expected_len

    # Finish-folding variant produces the same floats.
    finish = [0.0] * n
    starts2 = earliest_starts_indexed(
        order, pred_edges, e_src, e_w, dur, [0.0] * n, None, None, finish
    )
    assert starts2 == starts
    assert max(finish) == expected_len


def test_kernel_second_layer_and_chain_match_merged_graph():
    """Splitting edges across the overlay/chain inputs is equivalent to
    one merged graph evaluated by the Dag functions."""
    rng = random.Random(11)
    base = layered(4, 3, edge_probability=0.5, seed=2)
    interner, n, dur, e_src, e_w, pred_edges, succ, indeg = _interned(base, rng)

    merged = base.copy()
    # Second layer: a few extra weighted edges consistent with the order.
    order = kahn_order_indices(n, indeg, succ, interner.keys())
    pos = [0] * n
    for idx, v in enumerate(order):
        pos[v] = idx
    pred_pairs2 = [[] for _ in range(n)]
    added = 0
    for a in range(n):
        for b in range(n):
            if a != b and pos[a] < pos[b] and added < 5:
                ka, kb = interner.key_of(a), interner.key_of(b)
                if not merged.has_edge(ka, kb):
                    w = rng.uniform(0.1, 2.0)
                    merged.add_edge(ka, kb, w)
                    pred_pairs2[b].append((a, w))
                    added += 1
    # Chain: zero-weight path over three order-consecutive nodes.
    chain_pred = [-1] * n
    chain_nodes = order[1:4]
    for u, v in zip(chain_nodes, chain_nodes[1:]):
        if not merged.has_edge(interner.key_of(u), interner.key_of(v)):
            merged.add_edge(interner.key_of(u), interner.key_of(v), 0.0)
            chain_pred[v] = u

    weight = {interner.key_of(i): dur[i] for i in range(n)}
    merged_order = merged.topological_order()
    expected = earliest_start_times(
        merged, lambda node: weight[node], merged_order
    )
    kernel_order = [interner.id_of(node) for node in merged_order]
    starts = earliest_starts_indexed(
        kernel_order, pred_edges, e_src, e_w, dur, None, chain_pred,
        pred_pairs2,
    )
    for node, value in expected.items():
        assert starts[interner.id_of(node)] == value


def test_kahn_kernel_reports_cycles():
    succ = [[1], [2], [0]]
    indeg = [1, 1, 1]
    with pytest.raises(CycleError) as exc:
        kahn_order_indices(3, indeg, succ, ["a", "b", "c"])
    assert set(exc.value.cycle) == {"a", "b", "c"}