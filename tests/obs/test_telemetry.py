"""Telemetry recorder unit tests: recording, framing, merge, schema.

The load-bearing guarantee is the determinism contract: every
wall-clock quantity lives under ``ts`` or a ``*_s`` key, so
:func:`strip_times` leaves a fixed-seed stream byte-identical across
runs (the cross-process half is pinned in ``test_determinism.py``).
"""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.obs.telemetry import (
    EVENT_SCHEMA_VERSION,
    NULL,
    NullTelemetry,
    Telemetry,
    canonical_stream,
    format_summary_table,
    load_events,
    strip_times,
    summarize_events,
    validate_events,
)


class TestRecording:
    def test_event_carries_ts_and_kind(self):
        tele = Telemetry(label="t")
        tele.event("search_begin", seed=7, strategy="sa")
        (rec,) = tele.events
        assert rec["kind"] == "search_begin"
        assert rec["seed"] == 7
        assert isinstance(rec["ts"], float)

    def test_counters_accumulate(self):
        tele = Telemetry()
        tele.count("iterations")
        tele.count("iterations", 4)
        tele.counts({"hits": 2, "misses": 1}, prefix="engine.")
        tele.counts({"hits": 3}, prefix="engine.")
        assert tele.counters == {
            "iterations": 5, "engine.hits": 5, "engine.misses": 1,
        }

    def test_gauge_is_last_write(self):
        tele = Telemetry()
        tele.gauge("temperature", 10.0)
        tele.gauge("temperature", 2.5)
        assert tele.gauges == {"temperature": 2.5}

    def test_phase_accumulates_suffixed_timer(self):
        tele = Telemetry()
        with tele.phase("evaluate"):
            pass
        with tele.phase("evaluate"):
            pass
        assert set(tele.timers) == {"evaluate_s"}
        assert tele.timers["evaluate_s"] >= 0.0

    def test_enabled_flags(self):
        assert Telemetry().enabled is True
        assert NULL.enabled is False


class TestNullTelemetry:
    def test_all_operations_are_noops(self):
        null = NullTelemetry()
        null.event("x", a=1)
        null.count("c")
        null.counts({"c": 2})
        null.gauge("g", 1)
        with null.phase("p"):
            pass

    def test_phase_span_is_shared(self):
        # The disabled hot path must not allocate per call.
        assert NULL.phase("a") is NULL.phase("b")


class TestStripTimes:
    def test_drops_ts_and_seconds_keys_recursively(self):
        rec = {
            "ts": 1.0,
            "kind": "search_end",
            "runtime_s": 3.5,
            "nested": {"ts": 2.0, "elapsed_s": 1.0, "cost": 5.0},
            "list": [{"ts": 3.0, "n": 1}],
        }
        assert strip_times(rec) == {
            "kind": "search_end",
            "nested": {"cost": 5.0},
            "list": [{"n": 1}],
        }

    def test_canonical_stream_is_key_sorted(self):
        events = [{"kind": "a", "ts": 1.0, "z": 1, "b": 2}]
        assert canonical_stream(events) == '{"b": 2, "kind": "a", "z": 1}'


class TestJsonlRoundTrip:
    def test_write_then_load_then_validate(self, tmp_path):
        tele = Telemetry(label="roundtrip")
        tele.event("search_begin", seed=1)
        tele.count("iterations", 10)
        with tele.phase("evaluate"):
            pass
        path = str(tmp_path / "tele.jsonl")
        records = tele.write_jsonl_path(path)
        events = load_events(path)
        assert len(events) == records == 3  # header + 1 event + summary
        validate_events(events)
        assert events[0]["kind"] == "run_header"
        assert events[0]["schema_version"] == EVENT_SCHEMA_VERSION
        assert events[0]["label"] == "roundtrip"
        assert events[-1]["kind"] == "run_summary"
        assert events[-1]["counters"] == {"iterations": 10}
        assert "evaluate_s" in events[-1]["timers"]

    def test_write_jsonl_is_sorted_json(self):
        tele = Telemetry()
        tele.event("z_event", zebra=1, alpha=2)
        stream = io.StringIO()
        tele.write_jsonl(stream)
        for line in stream.getvalue().splitlines():
            rec = json.loads(line)
            assert list(rec) == sorted(rec)

    def test_load_events_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(TelemetryError, match="bad.jsonl:2"):
            load_events(str(path))


class TestValidate:
    def header(self):
        return {
            "ts": 0.0, "kind": "run_header",
            "schema_version": EVENT_SCHEMA_VERSION, "label": None,
            "step_interval": 100,
        }

    def test_empty_stream_rejected(self):
        with pytest.raises(TelemetryError, match="empty"):
            validate_events([])

    def test_missing_header_rejected(self):
        with pytest.raises(TelemetryError, match="run_header"):
            validate_events([{"ts": 0.0, "kind": "step"}])

    def test_unknown_schema_version_rejected(self):
        head = self.header()
        head["schema_version"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(TelemetryError, match="schema_version"):
            validate_events([head])

    def test_missing_ts_rejected(self):
        with pytest.raises(TelemetryError, match="missing required key"):
            validate_events([self.header(), {"kind": "step"}])

    def test_non_numeric_ts_rejected(self):
        with pytest.raises(TelemetryError, match="'ts' must be a number"):
            validate_events([self.header(), {"ts": True, "kind": "step"}])

    def test_empty_kind_rejected(self):
        with pytest.raises(TelemetryError, match="non-empty"):
            validate_events([self.header(), {"ts": 0.0, "kind": ""}])

    def test_unserializable_payload_rejected(self):
        bad = {"ts": 0.0, "kind": "step", "payload": object()}
        with pytest.raises(TelemetryError, match="serializable"):
            validate_events([self.header(), bad])


class TestAbsorb:
    def worker_payload(self, label, cost):
        worker = Telemetry(label=label)
        worker.event("search_begin", seed=1)
        worker.event("search_end", best_cost=cost, runtime_s=0.5)
        worker.count("iterations", 10)
        with worker.phase("evaluate"):
            pass
        worker.gauge("final", cost)
        return worker.export()

    def test_events_tagged_and_stats_summed(self):
        parent = Telemetry(label="parent")
        parent.absorb(0, "sa", self.worker_payload("sa", 5.0))
        parent.absorb(1, "tabu", self.worker_payload("tabu", 4.0))
        assert [e["job"] for e in parent.events] == [0, 0, 1, 1]
        assert [e["tag"] for e in parent.events] == ["sa", "sa", "tabu", "tabu"]
        assert parent.counters == {"iterations": 20}
        assert set(parent.timers) == {"evaluate_s"}
        assert parent.gauges == {"final": 4.0}

    def test_absorb_none_is_noop(self):
        parent = Telemetry()
        parent.absorb(0, "sa", None)
        assert parent.events == []

    def test_existing_tag_not_overwritten(self):
        worker = Telemetry()
        worker.event("custom", tag="inner")
        parent = Telemetry()
        parent.absorb(3, "outer", worker.export())
        assert parent.events[0]["tag"] == "inner"
        assert parent.events[0]["job"] == 3

    def test_job_config_round_trip(self):
        parent = Telemetry(step_interval=25)
        worker = Telemetry(label="w", **parent.job_config())
        assert worker.step_interval == 25


class TestSummarize:
    def stream(self):
        tele = Telemetry(label="demo")
        tele.event("search_begin", seed=1, strategy="sa")
        tele.event("step", iteration=100, cost=9.0)
        tele.event(
            "search_end", strategy="sa", best_cost=5.5,
            iterations=200, evaluations=150, runtime_s=0.8,
        )
        tele.count("iterations", 200)
        with tele.phase("evaluate"):
            pass
        stream = io.StringIO()
        tele.write_jsonl(stream)
        stream.seek(0)
        return [json.loads(line) for line in stream]

    def test_summarize_counts_and_jobs(self):
        summary = summarize_events(self.stream())
        assert summary["label"] == "demo"
        assert summary["kinds"]["step"] == 1
        assert summary["counters"] == {"iterations": 200}
        assert summary["jobs"]["run"]["best_cost"] == 5.5
        assert summary["jobs"]["run"]["strategy"] == "sa"

    def test_format_summary_table(self):
        text = format_summary_table(summarize_events(self.stream()))
        assert "demo" in text
        assert "sa" in text
        assert "5.500" in text
        assert "iterations" in text

    def test_format_handles_missing_fields(self):
        events = [
            {"ts": 0.0, "kind": "run_header",
             "schema_version": EVENT_SCHEMA_VERSION, "label": None},
            {"ts": 0.0, "kind": "search_end"},
        ]
        text = format_summary_table(summarize_events(events))
        assert "unlabeled run" in text
        assert "-" in text
