"""Telemetry integration: determinism across processes, zero-cost off.

Two load-bearing guarantees of the observability layer:

* **determinism** — for fixed seeds, the merged event stream is
  byte-identical (after :func:`strip_times`) whether the runner
  executes inline or fans out across worker processes, and across
  repeated runs;
* **free when off** — the disabled :data:`NULL` recorder allocates
  nothing on the hot path, so un-instrumented performance is untouched
  (the wall-clock half of that claim is the bench-compare CI gate).
"""

import sys

import pytest

from repro.api.facade import explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.obs.telemetry import (
    NULL,
    Telemetry,
    canonical_stream,
    validate_events,
)
from repro.search.runner import InstanceSpec, SearchJob, StrategySpec as RunnerSpec
from repro.search.runner import run_search_jobs


def small_jobs(app, arch):
    instance = InstanceSpec(app, architecture=arch)
    return [
        SearchJob(
            RunnerSpec("sa", {"iterations": 60, "warmup_iterations": 10}),
            instance, seed=1, tag="sa",
        ),
        SearchJob(
            RunnerSpec("tabu", {
                "iterations": 20, "candidates_per_iteration": 3,
            }),
            instance, seed=2, tag="tabu",
        ),
        SearchJob(
            RunnerSpec("tempering", {
                "chains": 3, "iterations": 20, "warmup_iterations": 4,
            }),
            instance, seed=3, tag="tempering",
        ),
    ]


def collect(app, arch, jobs):
    tele = Telemetry(label="test", step_interval=10)
    run_search_jobs(small_jobs(app, arch), jobs=jobs, telemetry=tele)
    return tele


class TestRunnerDeterminism:
    def test_inline_vs_workers_identical_streams(self, small_app, small_arch):
        inline = collect(small_app, small_arch, jobs=1)
        pooled = collect(small_app, small_arch, jobs=2)
        assert inline.events, "expected a non-empty event stream"
        assert canonical_stream(inline.events) == canonical_stream(pooled.events)
        assert inline.counters == pooled.counters

    def test_repeated_runs_identical(self, small_app, small_arch):
        first = collect(small_app, small_arch, jobs=1)
        second = collect(small_app, small_arch, jobs=1)
        assert canonical_stream(first.events) == canonical_stream(second.events)

    def test_events_tagged_in_submission_order(self, small_app, small_arch):
        tele = collect(small_app, small_arch, jobs=2)
        job_order = [e["job"] for e in tele.events]
        assert job_order == sorted(job_order)
        assert {e["tag"] for e in tele.events} == {"sa", "tabu", "tempering"}

    def test_engine_and_phase_data_present(self, small_app, small_arch):
        tele = collect(small_app, small_arch, jobs=1)
        kinds = {e["kind"] for e in tele.events}
        assert {"search_begin", "step", "search_end"} <= kinds
        assert tele.counters["iterations"] > 0
        assert tele.counters["evaluations"] > 0
        assert any(k.startswith("engine.") for k in tele.counters)
        assert {"propose_s", "evaluate_s", "accept_s"} <= set(tele.timers)


class TestFacadeTelemetry:
    def request(self, **overrides):
        base = dict(
            kind="single",
            application=ApplicationSpec(kind="builtin", name="motion"),
            architecture=ArchitectureSpec(kind="builtin", n_clbs=2000),
            strategy=StrategySpec("sa", {"keep_trace": False}),
            budget=BudgetSpec(iterations=120, warmup_iterations=20),
            engine=EngineSpec("incremental"),
            seed=1,
        )
        base.update(overrides)
        return ExplorationRequest(**base)

    def test_response_carries_summary_block(self):
        tele = Telemetry(label="facade")
        response = explore(self.request(), telemetry=tele)
        assert response.telemetry is not None
        assert response.telemetry["label"] == "facade"
        assert response.telemetry["events"] == len(tele.events)
        assert response.telemetry["counters"]["iterations"] == 120
        assert "telemetry" in response.to_dict()

    def test_envelope_unchanged_without_telemetry(self):
        response = explore(self.request())
        assert response.telemetry is None
        assert "telemetry" not in response.to_dict()

    def test_results_identical_with_and_without_telemetry(self):
        plain = explore(self.request())
        traced = explore(self.request(), telemetry=Telemetry())
        assert plain.best["cost"] == traced.best["cost"]
        assert plain.results[0]["history"] == traced.results[0]["history"]

    def test_jsonl_stream_validates(self, tmp_path):
        tele = Telemetry(label="facade")
        explore(self.request(), telemetry=tele)
        path = str(tmp_path / "stream.jsonl")
        tele.write_jsonl_path(path)
        from repro.obs.telemetry import load_events

        validate_events(load_events(path))


class TestTemperingTrace:
    def test_tempering_keeps_trace_through_tracker(self, small_app, small_arch):
        # Satellite of the telemetry PR: --trace-csv used to be wired
        # for the single-chain explorer only; the shared tracker trace
        # path now covers tempering too.
        instance = InstanceSpec(small_app, architecture=small_arch)
        spec = RunnerSpec("tempering", {
            "chains": 3, "iterations": 15, "warmup_iterations": 3,
            "keep_trace": True,
        })
        (outcome,) = run_search_jobs([SearchJob(spec, instance, seed=5)])
        trace = outcome.result.trace
        assert len(trace) == 15
        assert trace[0].iteration == 1
        from repro.sa.trace import write_csv
        import io

        buffer = io.StringIO()
        write_csv(trace, buffer)
        assert buffer.getvalue().count("\n") == 16  # header + rows


class TestNullOverhead:
    @pytest.mark.skipif(
        not hasattr(sys, "getallocatedblocks"),
        reason="needs CPython allocation accounting",
    )
    def test_disabled_hot_path_allocates_nothing(self):
        def hot_loop():
            for _ in range(1000):
                with NULL.phase("evaluate"):
                    pass
                NULL.count("iterations")
                NULL.count("accepted", 1)

        hot_loop()  # warm up shared objects / method caches
        # Interpreter internals (GC bookkeeping, lazy caches) can drift
        # by a couple of blocks between any two probes; a steady-state
        # zero-allocation loop reaches delta 0 on at least one trial.
        deltas = []
        for _ in range(5):
            before = sys.getallocatedblocks()
            hot_loop()
            deltas.append(sys.getallocatedblocks() - before)
        assert min(deltas) <= 0

    def test_strategies_default_to_null(self):
        from repro.search.strategy import SearchStrategy

        assert SearchStrategy.telemetry is NULL
        assert NULL.enabled is False
